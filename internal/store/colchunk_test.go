package store

import (
	"bytes"
	"encoding/csv"
	"io"
	"math/rand"
	"strings"
	"testing"

	"fixrule/internal/schema"
)

func TestColumnarRoundTrip(t *testing.T) {
	rel := sampleRelation()
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, rel, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(rel.Schema()) {
		t.Errorf("schema = %s", got.Schema())
	}
	if got.Len() != rel.Len() || len(schema.Diff(rel, got)) != 0 {
		t.Fatal("columnar round trip changed data")
	}
}

// TestColumnarRewriteByteIdentical: scanning a stream chunk by chunk and
// re-writing each chunk reproduces the original bytes exactly — the
// decoder preserves dictionaries and codes, and the encoder is
// deterministic.
func TestColumnarRewriteByteIdentical(t *testing.T) {
	rel := randomRelation(t, 500)
	var orig bytes.Buffer
	if err := WriteColumnar(&orig, rel, 64); err != nil {
		t.Fatal(err)
	}
	sc, err := NewChunkScanner(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cw, err := NewChunkWriter(&out, sc.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var c ColChunk
	for {
		_, err := sc.ReadChunk(&c)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteChunk(&c); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), out.Bytes()) {
		t.Fatalf("rewrite differs: %d vs %d bytes", orig.Len(), out.Len())
	}
}

func TestColumnarDetectsCorruption(t *testing.T) {
	rel := sampleRelation()
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, rel, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-6] ^= 0x40 // flip a bit before the checksum
	if _, err := ReadColumnar(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted stream read without error")
	}
	truncated := data[:len(data)-3]
	if _, err := ReadColumnar(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated stream read without error")
	}
}

// nastyValues exercises every CSV quoting rule: quotes, commas, newlines,
// carriage returns, leading spaces, the \. escape, and plain values.
var nastyValues = []string{
	"plain", "", `has"quote`, "comma,inside", "line\nbreak", "cr\rhere",
	" leadspace", "\ttab", `\.`, "ünïcode", "trail ", `""`, "a\r\nb",
	" nbsp", "ok2",
}

func randomRelation(t *testing.T, rows int) *schema.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	sch := schema.New("R", "a", "b", "c")
	rel := schema.NewRelation(sch)
	for i := 0; i < rows; i++ {
		tup := make(schema.Tuple, 3)
		for j := range tup {
			tup[j] = nastyValues[rng.Intn(len(nastyValues))]
		}
		rel.Append(tup)
	}
	return rel
}

// writeCSV renders rel with encoding/csv — the reference the chunk reader
// and renderer must match byte for byte.
func writeCSV(t *testing.T, rel *schema.Relation) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(rel.Schema().Attrs()); err != nil {
		t.Fatal(err)
	}
	for _, row := range rel.Rows() {
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCSVChunkReaderMatchesEncodingCSV parses adversarial CSV with both
// readers and requires identical records. The reference is encoding/csv's
// own reading of the bytes (which, e.g., normalises \r\n to \n inside
// quoted fields), not the relation the bytes were rendered from.
func TestCSVChunkReaderMatchesEncodingCSV(t *testing.T) {
	rel := randomRelation(t, 400)
	data := writeCSV(t, rel)
	want, err := refParse(string(data), 3)
	if err != nil {
		t.Fatal(err)
	}

	cr, header, err := NewCSVChunkReader(bytes.NewReader(data), 3)
	if err != nil {
		t.Fatal(err)
	}
	if wantH := rel.Schema().Attrs(); !equalStrings(header, wantH) {
		t.Fatalf("header = %q, want %q", header, wantH)
	}
	var c ColChunk
	row := 0
	for {
		n, err := cr.ReadChunk(&c, 64)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for a := 0; a < 3; a++ {
				if got := c.Value(i, a); got != want[row][a] {
					t.Fatalf("row %d col %d = %q, want %q", row, a, got, want[row][a])
				}
			}
			row++
		}
	}
	if row != len(want) {
		t.Fatalf("read %d rows, want %d", row, len(want))
	}
}

// TestCSVChunkRendererByteIdentical: chunk-parse then chunk-render must
// reproduce encoding/csv's output exactly, echo or not.
func TestCSVChunkRendererByteIdentical(t *testing.T) {
	for name, rel := range map[string]*schema.Relation{
		"nasty": randomRelation(t, 300),
		"plain": plainRelation(300),
	} {
		data := writeCSV(t, rel)
		// The reference is what a csv.Reader → csv.Writer pass over the
		// bytes produces (the existing StreamCSV data path).
		want := roundTripCSV(t, data, rel.Schema().Arity())
		cr, header, err := NewCSVChunkReader(bytes.NewReader(data), rel.Schema().Arity())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var out []byte
		for i, h := range header {
			if i > 0 {
				out = append(out, ',')
			}
			out = AppendCSVValue(out, h)
		}
		out = append(out, '\n')
		var c ColChunk
		var rend CSVChunkRenderer
		sawEcho := false
		for {
			_, err := cr.ReadChunk(&c, 64)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sawEcho = sawEcho || c.EchoOK
			out = rend.AppendChunkCSV(out, &c)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("%s: render differs from encoding/csv", name)
		}
		if name == "plain" && !sawEcho {
			t.Error("plain relation never took the echo fast path")
		}
		if name == "nasty" && sawEcho {
			t.Error("nasty relation echoed a chunk that needs quoting")
		}
	}
}

// roundTripCSV passes data through csv.Reader → csv.Writer, the reference
// transformation the chunk pipeline must reproduce byte for byte.
func roundTripCSV(t *testing.T, data []byte, arity int) []byte {
	t.Helper()
	r := csv.NewReader(bytes.NewReader(data))
	r.FieldsPerRecord = arity
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	return buf.Bytes()
}

func plainRelation(rows int) *schema.Relation {
	sch := schema.New("R", "a", "b", "c")
	rel := schema.NewRelation(sch)
	vals := []string{"alpha", "beta", "gamma", "delta", ""}
	for i := 0; i < rows; i++ {
		rel.Append(schema.Tuple{vals[i%5], vals[(i+1)%5], vals[(i+2)%5]})
	}
	return rel
}

// TestCSVChunkReaderTrickyInputs feeds raw CSV fragments to both parsers
// and requires agreement on acceptance and on the parsed records.
func TestCSVChunkReaderTrickyInputs(t *testing.T) {
	inputs := []string{
		"a,b\n1,2\n3,4\n",
		"a,b\r\n1,2\r\n",
		"a,b\n\n\n1,2\n",                   // blank lines skipped
		"a,b\n1,2",                         // no trailing newline
		"a,b\n1,2\r",                       // trailing \r at EOF
		"a,b\n\"x\",y\n",                   // quoted field
		"a,b\n\"x\"\"y\",z\n",              // escaped quote
		"a,b\n\"multi\nline\",z\n",         // newline in quoted field
		"a,b\n\"multi\r\nline\",z\n",       // \r\n in quoted field
		"a,b\n,\n",                         // empty fields
		"a,b\nx,\"\"\n",                    // empty quoted field
		"\xEF\xBB\xBFa,b\n1,2\n",           // BOM
		"a,b\n\" lead\",z\n",               // leading space, quoted
		"a,b\nx\"y,z\n",                    // bare quote: error
		"a,b\n\"x\"y,z\n",                  // stray char after quote: error
		"a,b\n\"unterminated,z\n",          // unterminated quote: error
		"a,b\n1,2,3\n",                     // too many fields: error
		"a,b\n1\n",                         // too few fields: error
		"a,b\nx,y\ntoo,many,fields\nz,w\n", // error mid-stream
		"a,b\n\"x\ny\"\"z\",\"q\"\n plain,q\n",
		"",    // empty input: header EOF
		"a,b", // header only, no newline
	}
	for _, in := range inputs {
		refRecs, refErr := refParse(in, 2)
		gotRecs, gotErr := chunkParse(in, 2)
		if (refErr == nil) != (gotErr == nil) {
			t.Errorf("%q: ref err %v, chunk err %v", in, refErr, gotErr)
			continue
		}
		if refErr != nil {
			// Both fail; rows accepted before the error must agree too.
			if len(refRecs) != len(gotRecs) {
				t.Errorf("%q: ref accepted %d rows before error, chunk %d", in, len(refRecs), len(gotRecs))
			}
			continue
		}
		if len(refRecs) != len(gotRecs) {
			t.Errorf("%q: ref %d rows, chunk %d", in, len(refRecs), len(gotRecs))
			continue
		}
		for i := range refRecs {
			if !equalStrings(refRecs[i], gotRecs[i]) {
				t.Errorf("%q row %d: ref %q, chunk %q", in, i, refRecs[i], gotRecs[i])
			}
		}
	}
}

// refParse runs encoding/csv over in (header + records, arity fields).
func refParse(in string, arity int) ([][]string, error) {
	r := csv.NewReader(strings.NewReader(in))
	r.FieldsPerRecord = arity
	if _, err := r.Read(); err != nil {
		return nil, err
	}
	var recs [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// chunkParse runs CSVChunkReader over in with a small chunk size.
func chunkParse(in string, arity int) ([][]string, error) {
	cr, _, err := NewCSVChunkReader(strings.NewReader(in), arity)
	if err != nil {
		return nil, err
	}
	var recs [][]string
	var c ColChunk
	for {
		n, err := cr.ReadChunk(&c, 3)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		for i := 0; i < n; i++ {
			rec := make([]string, arity)
			for a := 0; a < arity; a++ {
				rec[a] = c.Value(i, a)
			}
			recs = append(recs, rec)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInternTableOverflow drives a column past maxInternEntries and checks
// values still parse correctly through the fallback path.
func TestInternTableOverflow(t *testing.T) {
	var tbl internTable
	var col Column
	for i := 0; i < maxInternEntries+100; i++ {
		b := []byte{byte(i), byte(i >> 8), byte(i >> 16), 'x'}
		tbl.add(&col, b, 1)
	}
	if len(col.Codes) != maxInternEntries+100 {
		t.Fatalf("codes = %d", len(col.Codes))
	}
	for i, code := range col.Codes {
		want := string([]byte{byte(i), byte(i >> 8), byte(i >> 16), 'x'})
		if col.Dict[code] != want {
			t.Fatalf("entry %d = %q, want %q", i, col.Dict[code], want)
		}
	}
	// Re-adding an interned value in a later epoch dedups within the chunk.
	var col2 Column
	tbl.add(&col2, []byte{0, 0, 0, 'x'}, 2)
	tbl.add(&col2, []byte{0, 0, 0, 'x'}, 2)
	if len(col2.Dict) != 1 || len(col2.Codes) != 2 {
		t.Fatalf("dedup failed: dict %d codes %d", len(col2.Dict), len(col2.Codes))
	}
}
