package dataset

import (
	"fmt"
	"math/rand"

	"fixrule/internal/fd"
	"fixrule/internal/schema"
)

// UISSchema returns the 11-attribute uis mailing-list schema of Section 7.1.
func UISSchema() *schema.Schema {
	return schema.New("uis",
		"RecordID", "ssn", "fname", "minit", "lname",
		"stnum", "stadd", "apt", "city", "state", "zip")
}

// UISFDs returns the three FDs the paper uses for uis.
func UISFDs(sch *schema.Schema) []*fd.FD {
	return []*fd.FD{
		fd.MustNew(sch,
			[]string{"ssn"},
			[]string{"fname", "minit", "lname", "stnum", "stadd", "apt", "city", "state", "zip"}),
		fd.MustNew(sch,
			[]string{"fname", "minit", "lname"},
			[]string{"ssn", "stnum", "stadd", "apt", "city", "state", "zip"}),
		fd.MustNew(sch, []string{"zip"}, []string{"state", "city"}),
	}
}

// uisPerson is one mailing-list person; all FD-determined attributes live
// here.
type uisPerson struct {
	ssn, fname, minit, lname string
	stnum, stadd, apt        string
	city, state, zip         string
}

// UIS generates a clean uis relation with n rows. A mailing list contains
// only sparse near-duplicates, so ~98% of synthetic persons yield a single
// record and the rest repeat (sharing every FD-determined attribute and
// differing only in RecordID). Together with a zip pool larger than the
// row count, this reproduces the paper's observation that uis has few
// repeated patterns per FD — most LHS groups are singletons, so recall
// stays below 8% for every repair method (Figure 10(f)).
//
// Names are made unique per ssn by construction (combinatorial indexing
// over the name pools), which the FD fname, minit, lname → ssn requires.
func UIS(n int, seed int64) *Dataset {
	if n <= 0 {
		panic("dataset: UIS needs n > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	sch := UISSchema()

	// zip → (city, state): one (city, state) per zip. Many zips map to the
	// same city (as in reality); the pool is larger than the row count so
	// most zip groups are singletons — the "few repeated patterns" property
	// driving the paper's sub-8% uis recall (Figure 10(f)).
	type place struct{ city, state, zip string }
	numZips := 4 * n
	if numZips > 90000 {
		numZips = 90000
	}
	zips := make([]place, numZips)
	for i := range zips {
		ci := i % len(cityNames)
		zips[i] = place{
			city:  cityNames[ci],
			state: states[ci%len(states)],
			zip:   fmt.Sprintf("%05d", 10000+i),
		}
	}

	// 98% of persons appear exactly once; a mailing list has only sparse
	// near-duplicates, so most FD groups are singletons too.
	numPersons := n * 49 / 50
	if numPersons < 1 {
		numPersons = 1
	}
	persons := make([]uisPerson, numPersons)
	for i := range persons {
		pl := zips[rng.Intn(numZips)]
		// Unique (fname, minit, lname) via combinatorial indexing: the
		// triple index i decomposes into pool positions.
		f := firstNames[i%len(firstNames)]
		l := lastNames[(i/len(firstNames))%len(lastNames)]
		m := string(rune('A' + (i/(len(firstNames)*len(lastNames)))%26))
		persons[i] = uisPerson{
			ssn:   fmt.Sprintf("%03d-%02d-%04d", 100+i/10000%900, i/100%100, i%10000),
			fname: f, minit: m, lname: l,
			stnum: fmt.Sprintf("%d", 1+rng.Intn(9999)),
			stadd: streetNames[rng.Intn(len(streetNames))],
			apt:   fmt.Sprintf("APT %d", 1+rng.Intn(99)),
			city:  pl.city, state: pl.state, zip: pl.zip,
		}
	}

	rel := schema.NewRelation(sch)
	for i := 0; i < n; i++ {
		var p uisPerson
		if i < numPersons {
			p = persons[i] // everyone appears at least once
		} else {
			p = persons[rng.Intn(numPersons)] // duplicates
		}
		rel.Append(schema.Tuple{
			fmt.Sprintf("R%07d", i+1),
			p.ssn, p.fname, p.minit, p.lname,
			p.stnum, p.stadd, p.apt, p.city, p.state, p.zip,
		})
	}

	fds := UISFDs(sch)
	return &Dataset{
		Name:       "uis",
		Rel:        rel,
		FDs:        fds,
		NoiseAttrs: fdAttrs(sch, fds),
	}
}
