package consistency

import (
	"math/rand"
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/schema"
)

// starRuleset builds one "hub" rule conflicting with n "spoke" rules: the
// hub targets capital with a huge negative set; each spoke's evidence uses
// one of those negatives (case 2a).
func starRuleset(t *testing.T, n int) *core.Ruleset {
	t.Helper()
	sch := schema.New("R", "country", "capital", "city", "extra")
	negs := make([]string, n)
	for i := range negs {
		negs[i] = "cap" + string(rune('A'+i))
	}
	rs := core.NewRuleset(sch)
	hub := core.MustNew("hub", sch, map[string]string{"country": "X"},
		"capital", negs, "TRUTH")
	if err := rs.Add(hub); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		spoke := core.MustNew("spoke"+string(rune('A'+i)), sch,
			map[string]string{"capital": negs[i]},
			"city", []string{"bad"}, "good")
		if err := rs.Add(spoke); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

func TestBuildConflictGraphStar(t *testing.T) {
	rs := starRuleset(t, 4)
	g := BuildConflictGraph(rs, ByRule)
	if g.Edges != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges)
	}
	if len(g.Adjacency["hub"]) != 4 {
		t.Errorf("hub degree = %d", len(g.Adjacency["hub"]))
	}
	for _, s := range []string{"spokeA", "spokeB", "spokeC", "spokeD"} {
		if len(g.Adjacency[s]) != 1 || g.Adjacency[s][0] != "hub" {
			t.Errorf("%s adjacency = %v", s, g.Adjacency[s])
		}
	}
}

func TestMinRemovalPrefersHub(t *testing.T) {
	rs := starRuleset(t, 5)
	cover := MinRemoval(rs, ByRule)
	// The greedy cover is exactly the hub: one removal instead of the
	// RemoveBoth strategy's six.
	if len(cover) != 1 || cover[0] != "hub" {
		t.Fatalf("cover = %v, want [hub]", cover)
	}
	fixed, removed := ResolveByMinCover(rs, ByRule)
	if len(removed) != 1 || fixed.Len() != 5 {
		t.Fatalf("removed %v, kept %d rules", removed, fixed.Len())
	}
	if conf := IsConsistent(fixed, ByRule); conf != nil {
		t.Fatalf("cover removal left conflict: %v", conf)
	}
}

func TestMinRemovalConsistentInput(t *testing.T) {
	sch := travel()
	rs := core.MustRuleset(phi1(sch), phi2(sch))
	if cover := MinRemoval(rs, ByRule); len(cover) != 0 {
		t.Errorf("consistent input produced cover %v", cover)
	}
}

func TestMinRemovalAlwaysConsistentRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		rs := randomRuleset(rng, 3+rng.Intn(15))
		fixed, removed := ResolveByMinCover(rs, ByRule)
		if conf := IsConsistent(fixed, ByRule); conf != nil {
			t.Fatalf("trial %d: cover removal left conflict %v (removed %v)", trial, conf, removed)
		}
		// The cover never beats keeping everything when already consistent.
		if IsConsistent(rs, ByRule) == nil && len(removed) != 0 {
			t.Fatalf("trial %d: consistent set lost rules %v", trial, removed)
		}
	}
}

func TestMinRemovalBeatsRemoveBothOnStar(t *testing.T) {
	rs := starRuleset(t, 6)
	viaCover, coverRemoved := ResolveByMinCover(rs, ByRule)
	viaBoth, bothEdits, err := ResolveAll(rs, RemoveBoth{}, ByRule)
	if err != nil {
		t.Fatal(err)
	}
	if viaCover.Len() <= viaBoth.Len() {
		t.Errorf("cover kept %d rules, RemoveBoth kept %d — cover should win",
			viaCover.Len(), viaBoth.Len())
	}
	if len(coverRemoved) >= len(bothEdits) {
		t.Errorf("cover removed %d, RemoveBoth removed %d", len(coverRemoved), len(bothEdits))
	}
}

func TestRemoveMinCoverResolver(t *testing.T) {
	rs := starRuleset(t, 3)
	fixed, edits, err := ResolveAll(rs, RemoveMinCover{}, ByRule)
	if err != nil {
		t.Fatal(err)
	}
	if conf := IsConsistent(fixed, ByRule); conf != nil {
		t.Fatalf("resolver left conflict: %v", conf)
	}
	// The hub has the biggest negative surface, so the heuristic drops it
	// on the first conflict and everything else survives.
	if fixed.Get("hub") != nil {
		t.Error("hub survived")
	}
	if len(edits) != 1 {
		t.Errorf("edits = %v", edits)
	}
}
