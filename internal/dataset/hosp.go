package dataset

import (
	"fmt"
	"math/rand"

	"fixrule/internal/fd"
	"fixrule/internal/schema"
)

// HospSchema returns the 17-attribute hosp schema of Section 7.1.
func HospSchema() *schema.Schema {
	return schema.New("hosp",
		"PN", "HN", "address1", "address2", "address3", "city", "state",
		"zip", "county", "phn", "ht", "ho", "es", "MC", "MN", "condition",
		"stateAvg")
}

// HospFDs returns the five FDs the paper uses for hosp.
func HospFDs(sch *schema.Schema) []*fd.FD {
	return []*fd.FD{
		fd.MustNew(sch,
			[]string{"PN"},
			[]string{"HN", "address1", "address2", "address3", "city", "state", "zip", "county", "phn", "ht", "ho", "es"}),
		fd.MustNew(sch,
			[]string{"phn"},
			[]string{"zip", "city", "state", "address1", "address2", "address3"}),
		fd.MustNew(sch, []string{"MC"}, []string{"MN", "condition"}),
		fd.MustNew(sch, []string{"PN", "MC"}, []string{"stateAvg"}),
		fd.MustNew(sch, []string{"state", "MC"}, []string{"stateAvg"}),
	}
}

// hospProvider is one synthetic hospital; every attribute functionally
// determined by PN lives here.
type hospProvider struct {
	pn, hn                        string
	addr1, addr2, addr3           string
	city, state, zip, county, phn string
	ht, ho, es                    string
}

// Hosp generates a clean hosp relation with n rows. Rows are provider ×
// measure combinations, mirroring the real dataset where each hospital
// reports many quality measures; with the paper's n = 115000 the generator
// yields roughly 4600 providers × 24 measures.
//
// The generated relation satisfies HospFDs by construction:
// provider-determined attributes are copied from the provider record,
// measure-determined attributes from the measure table, and stateAvg from a
// (state, measure) table (PN, MC → stateAvg then follows because
// PN → state).
func Hosp(n int, seed int64) *Dataset {
	if n <= 0 {
		panic("dataset: Hosp needs n > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	sch := HospSchema()

	// Assign each city (and its zip and county) to one state so that
	// city values correlate with states the way rule mining expects.
	type place struct{ city, state, zip, county string }
	places := make([]place, len(cityNames))
	for i, c := range cityNames {
		st := states[i%len(states)]
		places[i] = place{
			city:   c,
			state:  st,
			zip:    fmt.Sprintf("%05d", 10000+i*37%89999),
			county: counties[i%len(counties)],
		}
	}

	numProviders := n / len(measures)
	if numProviders < 1 {
		numProviders = 1
	}
	providers := make([]hospProvider, numProviders)
	for i := range providers {
		pl := places[rng.Intn(len(places))]
		providers[i] = hospProvider{
			pn:     fmt.Sprintf("%06d", 10001+i),
			hn:     hospitalPrefixes[rng.Intn(len(hospitalPrefixes))] + " " + hospitalSuffixes[rng.Intn(len(hospitalSuffixes))],
			addr1:  fmt.Sprintf("%d %s", 100+rng.Intn(9900), streetNames[rng.Intn(len(streetNames))]),
			addr2:  fmt.Sprintf("UNIT %d", 1+rng.Intn(40)),
			addr3:  fmt.Sprintf("BLDG %c", 'A'+rune(rng.Intn(6))),
			city:   pl.city,
			state:  pl.state,
			zip:    pl.zip,
			county: pl.county,
			phn:    fmt.Sprintf("%010d", 2000000000+int64(i)*7919),
			ht:     hospitalTypes[rng.Intn(len(hospitalTypes))],
			ho:     hospitalOwners[rng.Intn(len(hospitalOwners))],
			es:     emergencyService[rng.Intn(len(emergencyService))],
		}
	}

	// stateAvg is determined by (state, MC).
	stateAvg := make(map[string]string)
	for _, st := range states {
		for _, m := range measures {
			key := st + "|" + m.code
			stateAvg[key] = fmt.Sprintf("%s_%s_%d%%", st, m.code, 50+rng.Intn(50))
		}
	}

	rel := schema.NewRelation(sch)
	for i := 0; i < n; i++ {
		p := providers[i%numProviders]
		m := measures[(i/numProviders)%len(measures)]
		rel.Append(schema.Tuple{
			p.pn, p.hn, p.addr1, p.addr2, p.addr3, p.city, p.state,
			p.zip, p.county, p.phn, p.ht, p.ho, p.es,
			m.code, m.name, m.condition,
			stateAvg[p.state+"|"+m.code],
		})
	}

	fds := HospFDs(sch)
	return &Dataset{
		Name:       "hosp",
		Rel:        rel,
		FDs:        fds,
		NoiseAttrs: fdAttrs(sch, fds),
	}
}
