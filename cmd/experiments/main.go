// Command experiments regenerates the figures and tables of the paper's
// Section 7 evaluation (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments                      # run everything at paper scale
//	experiments -exp fig10ab,fig13a  # selected experiments
//	experiments -fast                # scaled-down smoke run
//	experiments -csv results/        # additionally write CSVs
//
// Paper scale (115K-row hosp) takes minutes; -fast finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fixrule/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list the known experiment ids and exit")
		exp   = flag.String("exp", "", "comma-separated experiment ids (empty = all); known: "+strings.Join(experiments.IDs(), ", "))
		fast  = flag.Bool("fast", false, "scaled-down configuration for smoke runs")
		csv   = flag.String("csv", "", "directory to write one CSV per table")
		seed  = flag.Int64("seed", 1, "master seed")
		hosp  = flag.Int("hosp-rows", 0, "override hosp row count")
		uis   = flag.Int("uis-rows", 0, "override uis row count")
		hospR = flag.Int("hosp-rules", 0, "override hosp rule budget")
		uisR  = flag.Int("uis-rules", 0, "override uis rule budget")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *fast {
		cfg = experiments.FastConfig()
	}
	cfg.Seed = *seed
	if *hosp > 0 {
		cfg.HospRows = *hosp
	}
	if *uis > 0 {
		cfg.UISRows = *uis
	}
	if *hospR > 0 {
		cfg.HospRules = *hospR
	}
	if *uisR > 0 {
		cfg.UISRules = *uisR
	}

	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if err := experiments.Run(cfg, ids, os.Stdout, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
