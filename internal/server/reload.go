package server

import (
	"errors"
	"fmt"
	"net/http"

	"fixrule/internal/repair"
)

// ErrNoLoader is returned by Reload when the server was built without a
// Config.Loader.
var ErrNoLoader = errors.New("server: no ruleset loader configured")

// ReloadError wraps a reload failure with the stage it failed at, so the
// HTTP layer (and fixserve's SIGHUP handler) can map it to a status
// without parsing error text.
type ReloadError struct {
	// Stage is "load" (the loader failed; cause may reference server-side
	// paths) or "consistency" (the new ruleset has conflicts).
	Stage string
	Err   error
}

func (e *ReloadError) Error() string { return "server: reload " + e.Stage + ": " + e.Err.Error() }
func (e *ReloadError) Unwrap() error { return e.Err }

// RulesetInfo describes the engine installed by a reload.
type RulesetInfo struct {
	Version int64  `json:"ruleset_version"`
	Hash    string `json:"ruleset_hash"`
	Rules   int    `json:"rules"`
}

// Reload fetches a fresh ruleset through the configured loader, verifies
// its consistency (the precondition both repair algorithms need for
// deterministic fixes), compiles a new repairer, and swaps it in
// atomically. In-flight requests keep the engine they snapshotted and
// finish on the old ruleset; the next request sees the new one. A failed
// reload leaves the served ruleset untouched.
func (s *Server) Reload() (RulesetInfo, error) {
	if s.cfg.Loader == nil {
		return RulesetInfo{}, ErrNoLoader
	}
	// Serialising reloads keeps version numbers 1:1 with loader calls.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	rs, err := s.cfg.Loader()
	if err != nil {
		s.m.reloadFail.Inc()
		return RulesetInfo{}, &ReloadError{Stage: "load", Err: err}
	}
	rep, err := repair.NewRepairerChecked(rs)
	if err != nil {
		s.m.reloadFail.Inc()
		return RulesetInfo{}, &ReloadError{Stage: "consistency", Err: err}
	}
	eng := newEngine(rep, s.eng.Load().version+1)
	s.eng.Store(eng)
	s.m.reloads.Inc()
	s.m.version.Set(eng.version)
	s.cfg.Logger.Info("ruleset reloaded",
		"version", eng.version, "hash", eng.hash, "rules", rs.Len())
	return RulesetInfo{Version: eng.version, Hash: eng.hash, Rules: rs.Len()}, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, _ *engine) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, http.MethodPost)
		return
	}
	info, err := s.Reload()
	if err != nil {
		var re *ReloadError
		switch {
		case errors.Is(err, ErrNoLoader):
			s.writeError(w, http.StatusNotImplemented, codeReloadDisabled,
				"this server was started without a reloadable rule source")
		case errors.As(err, &re) && re.Stage == "consistency":
			// The conflict description names rules, never paths — the
			// operator posting /reload needs it to fix the ruleset.
			s.writeError(w, http.StatusUnprocessableEntity, codeInconsistent,
				//fix:allow errcode: the conflict text names rules from the operator's own posted ruleset, never paths
				fmt.Sprintf("new ruleset rejected: %v", re.Err))
		default:
			// Loader errors may carry file paths; log the detail, return
			// the code alone.
			s.cfg.Logger.Error("reload failed",
				"request_id", w.Header().Get(RequestIDHeader), "err", err)
			s.writeError(w, http.StatusInternalServerError, codeReloadFailed,
				"reloading the ruleset failed; see server log")
		}
		return
	}
	writeJSON(w, info)
}
