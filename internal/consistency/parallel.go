package consistency

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fixrule/internal/core"
)

// Pair checking is embarrassingly parallel: the |Σ|·(|Σ|−1)/2 pairs are
// independent. For the paper-scale 1000-rule sets this cuts the worst-case
// wall clock by the core count; results are identical to the sequential
// checkers (tests assert this).

// IsConsistentParallel is IsConsistent with a worker pool. It returns the
// first conflict in pair order (i, j) — the same conflict the sequential
// checker reports — or nil. workers <= 0 selects GOMAXPROCS.
func IsConsistentParallel(rs *core.Ruleset, c Checker, workers int) *Conflict {
	confs := scanPairs(rs, c, workers, true)
	if len(confs) == 0 {
		return nil
	}
	return confs[0]
}

// AllConflictsParallel is AllConflicts with a worker pool; conflicts come
// back in the sequential checker's pair order.
func AllConflictsParallel(rs *core.Ruleset, c Checker, workers int) []*Conflict {
	return scanPairs(rs, c, workers, false)
}

// scanPairs partitions the pair index space across workers. With
// firstOnly, workers abandon work past the earliest conflict found so far.
func scanPairs(rs *core.Ruleset, c Checker, workers int, firstOnly bool) []*Conflict {
	rules := rs.Rules()
	n := len(rules)
	if n < 2 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := n * (n - 1) / 2

	// pairAt maps a flat index to the (i, j) pair in row-major order.
	pairAt := func(k int) (int, int) {
		// Row i starts at offset i·n − i·(i+1)/2 − ... simpler: walk rows.
		i := 0
		rowLen := n - 1
		for k >= rowLen {
			k -= rowLen
			i++
			rowLen--
		}
		return i, i + 1 + k
	}

	type hit struct {
		k    int
		conf *Conflict
	}
	var (
		mu     sync.Mutex
		hits   []hit
		cutoff atomic.Int64
	)
	cutoff.Store(int64(total))

	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				if firstOnly && int64(k) > cutoff.Load() {
					return
				}
				i, j := pairAt(k)
				if conf := c.pair(rules[i], rules[j]); conf != nil {
					mu.Lock()
					hits = append(hits, hit{k: k, conf: conf})
					mu.Unlock()
					if firstOnly {
						// Shrink the cutoff so later indexes stop early.
						for {
							cur := cutoff.Load()
							if int64(k) >= cur || cutoff.CompareAndSwap(cur, int64(k)) {
								break
							}
						}
						return
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	sort.Slice(hits, func(a, b int) bool { return hits[a].k < hits[b].k })
	out := make([]*Conflict, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.conf)
	}
	if firstOnly && len(out) > 1 {
		out = out[:1]
	}
	return out
}
