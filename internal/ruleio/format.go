package ruleio

import (
	"fmt"
	"strings"

	"fixrule/internal/core"
)

// Format renders a ruleset in the DSL, including its SCHEMA declaration;
// the output parses back to an equivalent ruleset.
func Format(rs *core.Ruleset) string {
	var b strings.Builder
	sch := rs.Schema()
	fmt.Fprintf(&b, "SCHEMA %s(%s)\n", sch.Name(), strings.Join(sch.Attrs(), ", "))
	for _, r := range rs.Rules() {
		b.WriteByte('\n')
		b.WriteString(FormatRule(r))
	}
	return b.String()
}

// FormatRule renders a single rule as a DSL RULE block.
func FormatRule(r *core.Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RULE %s\n", r.Name())
	b.WriteString("  WHEN ")
	for i, a := range r.EvidenceAttrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		v, _ := r.EvidenceValue(a)
		fmt.Fprintf(&b, "%s = %s", a, quote(v))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  IF %s IN (", r.Target())
	for i, v := range r.NegativePatterns() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quote(v))
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  THEN %s = %s\n", r.Target(), quote(r.Fact()))
	return b.String()
}

// quote renders a DSL string literal with the escapes the lexer accepts.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range s {
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
