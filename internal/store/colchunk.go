// Columnar chunk format ("fcol"): the batch counterpart of frel. Rows are
// grouped into chunks; each chunk stores, per attribute, a local dictionary
// of distinct values plus one small integer per row indexing into it. The
// repair engine translates each local dictionary to Σ codes once per chunk
// instead of hashing every cell, which is what closes the gap between the
// streaming and the in-memory engines.
//
// Layout (all integers are unsigned varints):
//
//	magic   "FCOLv1\n"
//	schema  name, attr count, attrs...      (each string: length + bytes)
//	chunks  repeated: tag 0x02, row count, then per attribute:
//	        dict length, dict strings..., one code per row (< dict length)
//	end     tag 0x00, crc32 (IEEE, 4 bytes big-endian) of everything before
//
// The framing — varint strings, tag bytes, trailing checksum — matches the
// frel Writer/Scanner, so the two formats share reader plumbing and the
// same truncation/corruption guarantees.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"fixrule/internal/schema"
)

const colMagic = "FCOLv1\n"

// ColumnarContentType is the media type fixserve negotiates for fcol
// request and response bodies.
const ColumnarContentType = "application/x-fcol"

const tagChunk = 0x02

const (
	// maxChunkRowsWire bounds a decoded chunk's claimed row count.
	maxChunkRowsWire = 1 << 20
	// maxChunkCells bounds rows × arity, the decoder's transient footprint.
	maxChunkCells = 1 << 24
	// maxDictSlack bounds how far a dictionary may exceed the row count
	// (writers only exceed it by appended repair facts).
	maxDictSlack = 1 << 16
)

// Column is one attribute's slice of a chunk: the local dictionary of
// distinct values (in first-appearance order, possibly followed by facts a
// repair appended) and one dictionary index per row.
type Column struct {
	Dict []string
	// Global carries the CSV chunk reader's persistent per-column value
	// identities, parallel to Dict (-1 for values without one). The repair
	// engine keys its cross-chunk translation cache on them. Empty on
	// chunks decoded from the wire.
	Global []int32
	Codes  []int32
}

// AppendExtra adds a value with no global identity to the dictionary (the
// repair layer writing a fact into the chunk) and returns its local code.
func (col *Column) AppendExtra(v string) int32 {
	lc := int32(len(col.Dict))
	col.Dict = append(col.Dict, v)
	if len(col.Global) > 0 {
		col.Global = append(col.Global, -1)
	}
	return lc
}

// ColChunk is a batch of rows in columnar form. Chunks are reused across
// reads: Reset keeps the backing arrays.
type ColChunk struct {
	Cols []Column
	Rows int
	// Echo, valid when EchoOK, holds the chunk's rows pre-rendered as CSV.
	// The CSV chunk reader sets it when re-emitting the input bytes is
	// byte-identical to re-rendering through encoding/csv (every row took
	// the quote-free fast path and no value needs quoting); a repair that
	// modifies the chunk clears EchoOK.
	Echo   []byte
	EchoOK bool
	// EchoEnd, set by the CSV chunk reader (one entry per row), holds each
	// row's end offset in Echo — the row's bytes, newline included, are
	// Echo[previous non-negative end:EchoEnd[i]] — or -1 when that row's
	// rendering is not its input bytes. Per-row spans let the renderer copy
	// the untouched rows of a chunk even when other rows were repaired.
	// Empty on wire-decoded chunks.
	EchoEnd []int32
	// Dirty, when non-empty, flags rows a repair modified (1 = modified);
	// their echo spans are stale and they must be re-rendered from the
	// dictionaries. In-memory only, never serialized.
	Dirty []uint8
}

// MarkDirty flags row i as modified, materialising the dirty vector (sized
// to the chunk's rows, zeroed) on the chunk's first repair.
func (c *ColChunk) MarkDirty(i int) {
	if len(c.Dirty) < c.Rows {
		if cap(c.Dirty) < c.Rows {
			c.Dirty = make([]uint8, c.Rows)
		} else {
			c.Dirty = c.Dirty[:c.Rows]
			for j := range c.Dirty {
				c.Dirty[j] = 0
			}
		}
	}
	c.Dirty[i] = 1
}

// Reset clears the chunk for reuse with the given arity, keeping capacity.
func (c *ColChunk) Reset(arity int) {
	if cap(c.Cols) < arity {
		c.Cols = make([]Column, arity)
	}
	c.Cols = c.Cols[:arity]
	for a := range c.Cols {
		col := &c.Cols[a]
		col.Dict = col.Dict[:0]
		col.Global = col.Global[:0]
		col.Codes = col.Codes[:0]
	}
	c.Rows = 0
	c.Echo = c.Echo[:0]
	c.EchoOK = false
	c.EchoEnd = c.EchoEnd[:0]
	c.Dirty = c.Dirty[:0]
}

// Value returns the string at (row, attr).
func (c *ColChunk) Value(row, attr int) string {
	col := &c.Cols[attr]
	return col.Dict[col.Codes[row]]
}

// AppendChunkFrame appends the wire encoding of c (tag, row count, per-
// attribute dictionaries and codes) to dst. Workers of the parallel
// columnar pipeline encode frames off the writer goroutine with it.
//
//fix:hotpath
func AppendChunkFrame(dst []byte, c *ColChunk) []byte {
	dst = append(dst, tagChunk)
	dst = binary.AppendUvarint(dst, uint64(c.Rows))
	for a := range c.Cols {
		col := &c.Cols[a]
		dst = binary.AppendUvarint(dst, uint64(len(col.Dict)))
		for _, v := range col.Dict {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
		for _, code := range col.Codes {
			dst = binary.AppendUvarint(dst, uint64(uint32(code)))
		}
	}
	return dst
}

// ChunkWriter streams chunks to an io.Writer in fcol form. Append chunks,
// then Close to write the end marker and checksum. Not safe for concurrent
// use.
type ChunkWriter struct {
	w      *bufio.Writer
	crc    hash.Hash32
	sch    *schema.Schema
	frame  []byte
	closed bool
	err    error
}

// NewChunkWriter writes the fcol header for sch and returns a chunk writer.
func NewChunkWriter(w io.Writer, sch *schema.Schema) (*ChunkWriter, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), storeBufSize)
	out := &ChunkWriter{w: bw, crc: crc, sch: sch}
	if _, err := bw.WriteString(colMagic); err != nil {
		return nil, err
	}
	out.err = writeHeaderBody(bw, sch)
	if out.err != nil {
		return nil, out.err
	}
	return out, nil
}

// WriteChunk appends one chunk; its column count must match the schema
// arity and every column must carry one code per row. Empty chunks are
// skipped.
func (w *ChunkWriter) WriteChunk(c *ColChunk) error {
	if w.closed {
		return fmt.Errorf("store: WriteChunk after Close")
	}
	if w.err != nil {
		return w.err
	}
	if c.Rows == 0 {
		return nil
	}
	if len(c.Cols) != w.sch.Arity() {
		return fmt.Errorf("store: chunk has %d columns, schema arity %d", len(c.Cols), w.sch.Arity())
	}
	for a := range c.Cols {
		if len(c.Cols[a].Codes) != c.Rows {
			return fmt.Errorf("store: column %d has %d codes for %d rows", a, len(c.Cols[a].Codes), c.Rows)
		}
	}
	w.frame = AppendChunkFrame(w.frame[:0], c)
	return w.WriteFrame(w.frame)
}

// WriteFrame appends a pre-encoded chunk frame (as built by
// AppendChunkFrame). The parallel pipeline encodes frames in its workers
// and threads only the bytes through the ordered writer.
func (w *ChunkWriter) WriteFrame(frame []byte) error {
	if w.closed {
		return fmt.Errorf("store: WriteFrame after Close")
	}
	if w.err != nil {
		return w.err
	}
	_, w.err = w.w.Write(frame)
	return w.err
}

// Close writes the end marker and checksum and flushes. The underlying
// writer is not closed.
func (w *ChunkWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.w.WriteByte(tagEnd); err != nil {
		return err
	}
	// Flush so the CRC covers everything up to (and including) the end tag.
	if err := w.w.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], w.crc.Sum32())
	if _, err := w.w.Write(sum[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// ChunkScanner streams chunks from an fcol stream.
type ChunkScanner struct {
	r    *crcReader
	crc  hash.Hash32
	sch  *schema.Schema
	err  error
	done bool
}

// NewChunkScanner reads and validates the fcol header.
func NewChunkScanner(r io.Reader) (*ChunkScanner, error) {
	crc := crc32.NewIEEE()
	br := &crcReader{br: bufio.NewReaderSize(r, storeBufSize), crc: crc}
	head := make([]byte, len(colMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(head) != colMagic {
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	sch, err := readHeaderBody(br)
	if err != nil {
		return nil, err
	}
	return &ChunkScanner{r: br, crc: crc, sch: sch}, nil
}

// Schema returns the stream's schema.
func (s *ChunkScanner) Schema() *schema.Schema { return s.sch }

// ReadChunk decodes the next non-empty chunk into c (reusing its backing
// arrays) and returns its row count. At a clean end of stream — end tag
// present, checksum verified — it returns 0, io.EOF.
func (s *ChunkScanner) ReadChunk(c *ColChunk) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.done {
		return 0, io.EOF
	}
	for {
		tag, err := s.r.ReadByte()
		if err != nil {
			return 0, s.fail(fmt.Errorf("store: chunk tag: %w", err))
		}
		switch tag {
		case tagChunk:
			rows, err := s.decodeChunk(c)
			if err != nil {
				return 0, s.fail(err)
			}
			if rows == 0 {
				continue
			}
			return rows, nil
		case tagEnd:
			s.done = true
			// The CRC covers everything up to and including the end tag; read
			// the trailer from the raw reader so it stays out of the hash.
			want := s.crc.Sum32()
			var sum [4]byte
			if _, err := io.ReadFull(s.r.br, sum[:]); err != nil {
				return 0, s.fail(fmt.Errorf("store: checksum: %w", err))
			}
			if got := binary.BigEndian.Uint32(sum[:]); got != want {
				return 0, s.fail(fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", got, want))
			}
			return 0, io.EOF
		default:
			return 0, s.fail(fmt.Errorf("store: unknown tag 0x%02x", tag))
		}
	}
}

func (s *ChunkScanner) fail(err error) error {
	s.err = err
	return err
}

func (s *ChunkScanner) decodeChunk(c *ColChunk) (int, error) {
	rows64, err := binary.ReadUvarint(s.r)
	if err != nil {
		return 0, fmt.Errorf("store: chunk rows: %w", err)
	}
	arity := s.sch.Arity()
	if rows64 > maxChunkRowsWire || rows64*uint64(arity) > maxChunkCells {
		return 0, fmt.Errorf("store: implausible chunk size %d rows", rows64)
	}
	rows := int(rows64)
	c.Reset(arity)
	c.Rows = rows
	for a := 0; a < arity; a++ {
		col := &c.Cols[a]
		dictLen64, err := binary.ReadUvarint(s.r)
		if err != nil {
			return 0, fmt.Errorf("store: column %d dict length: %w", a, err)
		}
		if dictLen64 > rows64+maxDictSlack {
			return 0, fmt.Errorf("store: column %d dict length %d exceeds %d rows", a, dictLen64, rows)
		}
		dictLen := int(dictLen64)
		for j := 0; j < dictLen; j++ {
			v, err := readLString(s.r)
			if err != nil {
				return 0, fmt.Errorf("store: column %d dict entry %d: %w", a, j, err)
			}
			col.Dict = append(col.Dict, v)
		}
		for i := 0; i < rows; i++ {
			code, err := binary.ReadUvarint(s.r)
			if err != nil {
				return 0, fmt.Errorf("store: column %d code %d: %w", a, i, err)
			}
			if code >= dictLen64 {
				return 0, fmt.Errorf("store: column %d code %d out of range (dict %d)", a, code, dictLen)
			}
			col.Codes = append(col.Codes, int32(code))
		}
	}
	return rows, nil
}

// Err returns the first error encountered (nil on a clean end of stream).
func (s *ChunkScanner) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// defaultConvertChunkRows is the chunk size WriteColumnar batches rows by.
const defaultConvertChunkRows = 4096

// WriteColumnar streams an in-memory relation to w in fcol form.
// chunkRows <= 0 selects a default.
func WriteColumnar(w io.Writer, rel *schema.Relation, chunkRows int) error {
	if chunkRows <= 0 {
		chunkRows = defaultConvertChunkRows
	}
	cw, err := NewChunkWriter(w, rel.Schema())
	if err != nil {
		return err
	}
	arity := rel.Schema().Arity()
	var c ColChunk
	rows := rel.Rows()
	for lo := 0; lo < len(rows); lo += chunkRows {
		hi := lo + chunkRows
		if hi > len(rows) {
			hi = len(rows)
		}
		c.Reset(arity)
		c.Rows = hi - lo
		for a := 0; a < arity; a++ {
			col := &c.Cols[a]
			seen := make(map[string]int32, 64)
			for _, t := range rows[lo:hi] {
				v := t[a]
				code, ok := seen[v]
				if !ok {
					code = int32(len(col.Dict))
					col.Dict = append(col.Dict, v)
					seen[v] = code
				}
				col.Codes = append(col.Codes, code)
			}
		}
		if err := cw.WriteChunk(&c); err != nil {
			return err
		}
	}
	return cw.Close()
}

// ReadColumnar loads a whole fcol stream into memory.
func ReadColumnar(r io.Reader) (*schema.Relation, error) {
	s, err := NewChunkScanner(r)
	if err != nil {
		return nil, err
	}
	rel := schema.NewRelation(s.Schema())
	arity := s.sch.Arity()
	var c ColChunk
	for {
		rows, err := s.ReadChunk(&c)
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows; i++ {
			t := make(schema.Tuple, arity)
			for a := 0; a < arity; a++ {
				t[a] = c.Value(i, a)
			}
			rel.Append(t)
		}
	}
}
