package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fixrule/internal/core"
	"fixrule/internal/obs"
	"fixrule/internal/repair"
)

// This file is the multi-tenant engine registry: each tenant serves from
// its own compiled, consistency-checked ruleset, resolved on first use
// through the configured TenantOptions.Loader and cached in an LRU bounded
// by both an entry count and an estimated memory budget. Compilation is
// singleflighted — N concurrent cold requests for one tenant run the
// loader and the consistency check exactly once — and eviction never
// invalidates in-flight requests, which hold their immutable engine
// snapshot until they finish. Per-tenant versions survive eviction, so a
// re-admitted tenant continues its version sequence and the
// X-Fixserve-Ruleset-Version header stays monotonic per tenant.

// TenantOptions enables and tunes multi-tenant serving. The zero value of
// every limit selects a production-safe default; Loader is required.
type TenantOptions struct {
	// Loader supplies a tenant's ruleset. Return an error wrapping
	// fs.ErrNotExist for unknown tenants (mapped to 404); any other error
	// is mapped to 500 with the detail kept server-side.
	Loader func(tenant string) (*core.Ruleset, error)
	// MaxEngines bounds the number of cached compiled engines; <= 0
	// selects 64. The least recently used tenant is evicted first.
	MaxEngines int
	// MaxEngineBytes bounds the estimated memory held by cached engines;
	// <= 0 selects 256 MiB. A single engine larger than the budget is
	// still served (the cache never refuses a tenant), but it is the only
	// resident entry while in use.
	MaxEngineBytes int64
	// MaxInFlight bounds concurrently served repair requests per tenant;
	// excess requests are shed with 503 tenant_overloaded. <= 0 selects 16.
	MaxInFlight int
	// MaxBodyBytes caps request bodies on tenant routes; <= 0 inherits the
	// server-wide Config.MaxBodyBytes.
	MaxBodyBytes int64
}

func (o TenantOptions) withDefaults(serverBody int64) TenantOptions {
	if o.MaxEngines <= 0 {
		o.MaxEngines = 64
	}
	if o.MaxEngineBytes <= 0 {
		o.MaxEngineBytes = 256 << 20
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 16
	}
	if o.MaxBodyBytes <= 0 || o.MaxBodyBytes > serverBody {
		o.MaxBodyBytes = serverBody
	}
	return o
}

// tenant is one tenant's serving state. The engine pointer is swapped
// atomically by reloads exactly like the single-tenant server's, so a
// request that snapshotted the engine never observes a half-swapped
// ruleset. The struct stays valid after eviction: in-flight requests keep
// using their snapshot and release the semaphore they hold.
type tenant struct {
	name string
	eng  atomic.Pointer[engine]
	sem  chan struct{}
	elem *list.Element // registry LRU position, guarded by registry.mu
	cost int64         // estimated engine bytes, guarded by registry.mu
	m    *tenantMetrics
}

// tenantMetrics are one tenant's metric series, all carrying a tenant
// label. The obs registry deduplicates by (name, labels), so an evicted
// and re-admitted tenant resolves back to the same monotonic counters.
type tenantMetrics struct {
	requests   *obs.Counter
	shed       *obs.Counter
	tuples     *obs.Counter
	repaired   *obs.Counter
	rulesFired *obs.Counter
	oovCells   *obs.Counter
	reloads    *obs.Counter
	version    *obs.Gauge
	// quality holds the tenant's windowed telemetry, serving
	// /t/{tenant}/quality. Stored here (not on the tenant entry) so the
	// windows survive LRU eviction just like the cumulative counters.
	quality *qualityTracker

	attrMu        sync.Mutex
	changedByAttr map[string]*obs.Counter
	oovByAttr     map[string]*obs.Counter
}

func newTenantMetrics(reg *obs.Registry, name string, qcfg qualityConfig) *tenantMetrics {
	l := func(extra ...string) string {
		kv := append([]string{"tenant", name}, extra...)
		return obs.Labels(kv...)
	}
	return &tenantMetrics{
		requests: reg.Counter("fixserve_tenant_requests_total",
			"Requests served on tenant routes, by tenant.", l()),
		shed: reg.Counter("fixserve_tenant_shed_total",
			"Tenant requests shed with 503 because the per-tenant in-flight quota was reached.", l()),
		tuples: reg.Counter("fixserve_tenant_tuples_total",
			"Tuples processed by a tenant's repair endpoints.", l()),
		repaired: reg.Counter("fixserve_tenant_tuples_repaired_total",
			"Tuples changed by at least one rule, by tenant.", l()),
		rulesFired: reg.Counter("fixserve_tenant_rules_fired_total",
			"Rule applications (repair steps), by tenant.", l()),
		oovCells: reg.Counter("fixserve_tenant_oov_cells_total",
			"Input cells outside the tenant ruleset vocabulary.", l()),
		reloads: reg.Counter("fixserve_tenant_reloads_total",
			"Successful per-tenant ruleset reloads.", l()),
		version: reg.Gauge("fixserve_tenant_ruleset_version",
			"Served ruleset version, by tenant; survives eviction.", l()),
		quality:       newQualityTracker(qcfg),
		changedByAttr: make(map[string]*obs.Counter),
		oovByAttr:     make(map[string]*obs.Counter),
	}
}

// changedCounter resolves fixserve_tenant_cells_changed_total{tenant,attr}.
func (tm *tenantMetrics) changedCounter(reg *obs.Registry, tenantName, attr string) *obs.Counter {
	tm.attrMu.Lock()
	defer tm.attrMu.Unlock()
	c := tm.changedByAttr[attr]
	if c == nil {
		c = reg.Counter("fixserve_tenant_cells_changed_total",
			"Cell writes by repairs, by tenant and target attribute.",
			obs.Labels("tenant", tenantName, "attr", attr))
		tm.changedByAttr[attr] = c
	}
	return c
}

// oovCounter resolves fixserve_tenant_cells_oov_total{tenant,attr}.
func (tm *tenantMetrics) oovCounter(reg *obs.Registry, tenantName, attr string) *obs.Counter {
	tm.attrMu.Lock()
	defer tm.attrMu.Unlock()
	c := tm.oovByAttr[attr]
	if c == nil {
		c = reg.Counter("fixserve_tenant_cells_oov_total",
			"Input cells outside the ruleset vocabulary, by tenant and attribute.",
			obs.Labels("tenant", tenantName, "attr", attr))
		tm.oovByAttr[attr] = c
	}
	return c
}

// flight is one in-progress tenant compilation. Waiters block on done and
// read e/err afterwards.
type flight struct {
	done chan struct{}
	e    *tenant
	err  error
}

// tenantRegistry is the LRU of compiled tenant engines plus the
// compilation singleflight and the per-tenant version history.
type tenantRegistry struct {
	opts TenantOptions
	reg  *obs.Registry
	qcfg qualityConfig

	mu       sync.Mutex
	entries  map[string]*tenant
	lru      *list.List       // front = most recently used
	mem      int64            // sum of resident entry costs
	versions map[string]int64 // survives eviction; 1:1 with loader calls that installed an engine
	flights  map[string]*flight
	metrics  map[string]*tenantMetrics // survives eviction, bounding re-registration work

	engines   *obs.Gauge
	bytes     *obs.Gauge
	evictions *obs.Counter
	compiles  *obs.Counter
}

func newTenantRegistry(opts TenantOptions, reg *obs.Registry, qcfg qualityConfig) *tenantRegistry {
	return &tenantRegistry{
		opts:     opts,
		reg:      reg,
		qcfg:     qcfg,
		entries:  make(map[string]*tenant),
		lru:      list.New(),
		versions: make(map[string]int64),
		flights:  make(map[string]*flight),
		metrics:  make(map[string]*tenantMetrics),
		engines: reg.Gauge("fixserve_tenant_engines",
			"Compiled tenant engines resident in the LRU cache.", ""),
		bytes: reg.Gauge("fixserve_tenant_engine_bytes",
			"Estimated memory held by cached tenant engines.", ""),
		evictions: reg.Counter("fixserve_tenant_evictions_total",
			"Tenant engines evicted from the LRU cache.", ""),
		compiles: reg.Counter("fixserve_tenant_compiles_total",
			"Tenant ruleset compilations (cold loads and reloads).", ""),
	}
}

// engineCost estimates the resident bytes of one compiled engine: a fixed
// per-engine overhead (inverted lists, dictionaries, scratch pools) plus a
// per-pattern-cell contribution. The estimate only has to be consistent
// and monotone in ruleset size for the LRU budget to be meaningful.
func engineCost(rep *repair.Repairer) int64 {
	return 16<<10 + int64(rep.Ruleset().Size())*48
}

// tenantMetricsFor resolves (or mints) a tenant's metric series.
func (r *tenantRegistry) tenantMetricsFor(name string) *tenantMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	tm := r.metrics[name]
	if tm == nil {
		tm = newTenantMetrics(r.reg, name, r.qcfg)
		r.metrics[name] = tm
	}
	return tm
}

// get resolves a tenant's serving state, compiling it on a cold hit.
// Exactly one goroutine runs the loader per cold tenant; the rest wait on
// its flight and share the result (including a load error — the next
// request after a failed flight retries).
func (r *tenantRegistry) get(name string) (*tenant, error) {
	r.mu.Lock()
	if e := r.entries[name]; e != nil {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		return e, nil
	}
	if f := r.flights[name]; f != nil {
		r.mu.Unlock()
		<-f.done
		return f.e, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.flights[name] = f
	r.mu.Unlock()

	f.e, f.err = r.compile(name)
	r.mu.Lock()
	delete(r.flights, name)
	if cur := r.entries[name]; cur != nil {
		// A reload installed this tenant while the flight was compiling.
		// The installed engine is the newer one (the reload's loader call
		// happened after ours started); admitting the flight's result
		// would silently revert the hot deploy and orphan cur in the LRU.
		// Discard our compile and serve the installed entry instead.
		r.lru.MoveToFront(cur.elem)
		f.e, f.err = cur, nil
	} else if f.err == nil {
		r.admitLocked(f.e)
	}
	r.mu.Unlock()
	close(f.done)
	return f.e, f.err
}

// compile loads and consistency-checks one tenant's ruleset outside the
// registry lock, building a fresh entry. The version is assigned under the
// lock at admission time.
func (r *tenantRegistry) compile(name string) (*tenant, error) {
	rs, err := r.opts.Loader(name)
	if err != nil {
		return nil, &ReloadError{Stage: "load", Err: err}
	}
	rep, err := repair.NewRepairerChecked(rs)
	if err != nil {
		return nil, &ReloadError{Stage: "consistency", Err: err}
	}
	r.compiles.Inc()
	tm := r.tenantMetricsFor(name)
	e := &tenant{
		name: name,
		sem:  make(chan struct{}, r.opts.MaxInFlight),
		cost: engineCost(rep),
		m:    tm,
	}
	eng := newEngine(rep, 0)
	eng.tenant = name
	eng.tm = tm
	e.eng.Store(eng)
	return e, nil
}

// admitLocked inserts a freshly compiled entry, stamps its version from
// the tenant's surviving sequence, and evicts over-budget entries from the
// cold end. The newly admitted entry is never evicted, so a tenant larger
// than the whole memory budget still serves (alone).
func (r *tenantRegistry) admitLocked(e *tenant) {
	if old := r.entries[e.name]; old != nil && old != e {
		// Defense in depth: never double-insert a tenant. Unlink the
		// resident entry first so the LRU and the map stay 1:1 and the
		// memory accounting stays exact (in-flight requests on the old
		// entry keep their snapshot and drain normally).
		r.lru.Remove(old.elem)
		r.mem -= old.cost
	}
	r.versions[e.name]++
	eng := e.eng.Load()
	eng.version = r.versions[e.name]
	e.m.version.Set(eng.version)
	e.elem = r.lru.PushFront(e)
	r.entries[e.name] = e
	r.mem += e.cost
	r.evictOverBudgetLocked(e)
	r.engines.Set(int64(r.lru.Len()))
	r.bytes.Set(r.mem)
}

// evictOverBudgetLocked drops least-recently-used entries until both
// budgets hold, never evicting keep.
func (r *tenantRegistry) evictOverBudgetLocked(keep *tenant) {
	for r.lru.Len() > 1 && (r.lru.Len() > r.opts.MaxEngines || r.mem > r.opts.MaxEngineBytes) {
		back := r.lru.Back()
		victim := back.Value.(*tenant)
		if victim == keep {
			// keep drifted to the back (single-entry case is excluded by
			// the loop guard); move on — nothing else can be evicted
			// before it without violating the admission guarantee.
			break
		}
		r.lru.Remove(back)
		delete(r.entries, victim.name)
		r.mem -= victim.cost
		r.evictions.Inc()
	}
}

// reload force-loads a tenant's ruleset and swaps it in atomically,
// whether or not the tenant is currently cached — a per-tenant hot deploy.
// In-flight requests finish on the engine they snapshotted. A failed
// reload leaves the served engine untouched.
func (r *tenantRegistry) reload(name string) (RulesetInfo, error) {
	rs, err := r.opts.Loader(name)
	if err != nil {
		return RulesetInfo{}, &ReloadError{Stage: "load", Err: err}
	}
	rep, err := repair.NewRepairerChecked(rs)
	if err != nil {
		return RulesetInfo{}, &ReloadError{Stage: "consistency", Err: err}
	}
	r.compiles.Inc()
	tm := r.tenantMetricsFor(name)
	eng := newEngine(rep, 0)
	eng.tenant = name
	eng.tm = tm

	r.mu.Lock()
	r.versions[name]++
	eng.version = r.versions[name]
	tm.version.Set(eng.version)
	if e := r.entries[name]; e != nil {
		newCost := engineCost(rep)
		r.mem += newCost - e.cost
		e.cost = newCost
		e.eng.Store(eng)
		r.lru.MoveToFront(e.elem)
		r.evictOverBudgetLocked(e)
	} else {
		e := &tenant{
			name: name,
			sem:  make(chan struct{}, r.opts.MaxInFlight),
			cost: engineCost(rep),
			m:    tm,
		}
		e.eng.Store(eng)
		e.elem = r.lru.PushFront(e)
		r.entries[name] = e
		r.mem += e.cost
		r.evictOverBudgetLocked(e)
	}
	r.engines.Set(int64(r.lru.Len()))
	r.bytes.Set(r.mem)
	r.mu.Unlock()
	tm.reloads.Inc()
	return RulesetInfo{Version: eng.version, Hash: eng.hash, Rules: rs.Len()}, nil
}

// invalidateAll drops every cached engine; the next request per tenant
// recompiles through the loader. Versions survive, so reloads-by-
// invalidation still bump the per-tenant version header. Returns the
// number of entries dropped.
func (r *tenantRegistry) invalidateAll() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lru.Len()
	r.entries = make(map[string]*tenant)
	r.lru.Init()
	r.mem = 0
	r.engines.Set(0)
	r.bytes.Set(0)
	return n
}

// snapshotLocked helpers for tests and /stats.
func (r *tenantRegistry) cached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[name] != nil
}

func (r *tenantRegistry) residentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

func (r *tenantRegistry) residentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mem
}
