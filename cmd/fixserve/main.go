// Command fixserve runs the fixing-rule repair service over HTTP: load a
// consistent ruleset, then repair tuples on the wire — the
// no-user-in-the-loop data-monitoring deployment the paper contrasts with
// editing rules.
//
// Usage:
//
//	fixserve -rules rules.dsl -addr :8080
//	fixserve -mode worker -tenant-rules /etc/fixrule/tenants -addr :8081
//	fixserve -mode proxy -peers http://w1:8081,http://w2:8081 -addr :8080
//
// Modes (one binary is the whole topology):
//
//   - standalone (default): serve a single ruleset (-rules); add
//     -tenant-rules to also serve per-tenant rulesets under /t/{tenant}/.
//   - worker: serve tenant routes only, from -tenant-rules; the legacy
//     single-tenant routes answer 404 unless -rules is also given.
//   - proxy: own no rulesets; forward /t/{tenant}/ requests to the worker
//     owning the tenant on a consistent-hash ring over -peers, streaming
//     bodies (CSV and columnar alike) with trace propagation intact.
//
// Operations:
//
//   - SIGHUP (or POST /reload) re-reads the rule file, verifies its
//     consistency, and swaps the compiled ruleset atomically; in-flight
//     requests finish on the old version. In multi-tenant modes SIGHUP
//     also drops every cached tenant engine (recompiled on next use);
//     POST /t/{tenant}/reload hot-deploys one tenant.
//   - SIGTERM / SIGINT drain gracefully: the listener closes, in-flight
//     requests complete (up to -drain-timeout), then the process exits 0.
//   - GET /metrics serves Prometheus text; GET /stats the same counters
//     as JSON with latency quantiles; GET /t/{tenant}/stats one tenant's.
//   - Every response carries X-Request-Id and a W3C traceparent header;
//     -trace-sample of requests (and every 5xx) retain a full trace —
//     including per-tuple chase steps — browsable at /debug/traces.
//     Logs are structured (log/slog, -log-level) and carry the same IDs.
//   - -pprof exposes net/http/pprof under /debug/pprof/ (off by default).
//
// Endpoints (see docs/SERVER.md and docs/OBSERVABILITY.md):
//
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus exposition (with trace exemplars)
//	GET  /stats               service counters and ruleset version
//	GET  /quality             windowed data-quality telemetry + drift verdicts
//	GET  /rules[?format=json] the loaded ruleset
//	GET  /rules/stats         rule statistics
//	GET  /debug/traces        recent request traces; /debug/traces/<id> drills in
//	POST /repair              JSON tuples in, repaired tuples + steps out
//	POST /repair/csv          CSV stream in, repaired CSV out
//	POST /explain             one tuple in, repair provenance out
//	POST /reload              hot-swap the ruleset from the rule file
//	     /t/{tenant}/...      the same repair surface per tenant
//	GET  /shard               (proxy mode) ring topology; ?tenant=x → owner
//	GET  /fleet               (proxy mode) per-worker health + aggregated quality
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/ruleio"
	"fixrule/internal/server"
	"fixrule/internal/trace"
)

func main() {
	var (
		mode          = flag.String("mode", "standalone", "standalone, worker (tenant routes only) or proxy (shard router)")
		rulesPath     = flag.String("rules", "", "rule file (DSL, or JSON when *.json); re-read on reload")
		tenantDir     = flag.String("tenant-rules", "", "directory of per-tenant rule files (<tenant>.dsl or <tenant>.json); enables /t/{tenant}/ routes")
		peers         = flag.String("peers", "", "comma-separated worker base URLs (proxy mode)")
		addr          = flag.String("addr", ":8080", "listen address")
		maxBody       = flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
		maxInFlight   = flag.Int("max-inflight", 64, "concurrent repair requests before shedding with 503")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "per-request repair deadline")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget")
		streamWorkers = flag.Int("stream-workers", 1, "workers for /repair/csv streaming (0 = GOMAXPROCS, 1 = sequential)")
		maxEngines    = flag.Int("max-engines", 64, "compiled tenant engines kept in the LRU cache")
		engineMem     = flag.Int64("engine-mem", 256<<20, "estimated memory budget for cached tenant engines, in bytes")
		tenantInFl    = flag.Int("tenant-inflight", 16, "concurrent repair requests per tenant before shedding with 503")
		tenantMaxBody = flag.Int64("tenant-max-body", 0, "per-tenant request body cap in bytes (0 = -max-body)")
		shardReplicas = flag.Int("shard-replicas", 128, "virtual nodes per worker on the consistent-hash ring (proxy mode)")
		qualityWin    = flag.Duration("quality-window", time.Minute, "live window span for /quality telemetry")
		qualityBase   = flag.Duration("quality-baseline", 10*time.Minute, "baseline window span the drift detector compares against")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "worker health/quality probe period (proxy mode)")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe HTTP deadline (proxy mode)")
		logLevel      = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		traceSample   = flag.Float64("trace-sample", 0.01, "fraction of requests recording full traces for /debug/traces (errors always recorded)")
		traceRing     = flag.Int("trace-ring", 64, "completed traces retained for /debug/traces")
		pprofOn       = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixserve:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	tracer := trace.New(trace.Options{SampleRate: *traceSample, RingSize: *traceRing})
	workers := *streamWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var tenants *server.TenantOptions
	if *tenantDir != "" {
		tenants = &server.TenantOptions{
			Loader:         ruleio.TenantDirLoader(*tenantDir),
			MaxEngines:     *maxEngines,
			MaxEngineBytes: *engineMem,
			MaxInFlight:    *tenantInFl,
			MaxBodyBytes:   *tenantMaxBody,
		}
	}
	cfg := server.Config{
		MaxBodyBytes:    *maxBody,
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *reqTimeout,
		StreamWorkers:   workers,
		Logger:          logger,
		Tracer:          tracer,
		EnablePprof:     *pprofOn,
		Tenants:         tenants,
		QualityWindow:   *qualityWin,
		QualityBaseline: *qualityBase,
	}

	var app application
	switch *mode {
	case "standalone", "worker":
		app, err = buildNode(*mode, *rulesPath, cfg)
	case "proxy":
		app, err = buildProxy(*peers, *shardReplicas, *maxBody, *probeInterval, *probeTimeout, logger, tracer)
	default:
		err = fmt.Errorf("unknown -mode %q (want standalone, worker or proxy)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixserve:", err)
		if _, usage := err.(usageError); usage {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
	if err := serve(app, *addr, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "fixserve:", err)
		os.Exit(1)
	}
}

// usageError marks a flag-validation failure (exit 2 + usage text).
type usageError string

func (e usageError) Error() string { return string(e) }

// application is one serving topology: a handler plus the banner line,
// the SIGHUP action of its mode, and an optional shutdown hook that stops
// background workers (the proxy's prober) after the listener drains.
type application struct {
	handler http.Handler
	banner  string
	onHUP   func()
	close   func()
}

// buildNode assembles a standalone or worker node.
func buildNode(mode, rulesPath string, cfg server.Config) (application, error) {
	if mode == "standalone" && rulesPath == "" {
		return application{}, usageError("-rules is required in standalone mode (or use -mode worker with -tenant-rules)")
	}
	if mode == "worker" && cfg.Tenants == nil {
		return application{}, usageError("-tenant-rules is required in worker mode")
	}

	var srv *server.Server
	var banner string
	if rulesPath != "" {
		cfg.Loader = func() (*core.Ruleset, error) { return ruleio.LoadFile(rulesPath) }
		rs, err := ruleio.LoadFile(rulesPath)
		if err != nil {
			return application{}, err
		}
		rep, err := repair.NewRepairerChecked(rs)
		if err != nil {
			return application{}, err
		}
		srv = server.NewWithConfig(rep, cfg)
		banner = fmt.Sprintf("fixserve: %d rules over %s (version 1, hash %s)",
			rs.Len(), rs.Schema(), server.RulesetHash(rs))
		if srv.TenantEnabled() {
			banner += ", tenant routes on"
		}
	} else {
		var err error
		srv, err = server.NewTenantOnly(cfg)
		if err != nil {
			return application{}, err
		}
		banner = "fixserve: worker serving tenant routes only"
	}
	onHUP := func() {
		if rulesPath != "" {
			if info, err := srv.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "fixserve: SIGHUP reload rejected:", err)
			} else {
				fmt.Printf("fixserve: SIGHUP reload ok: version %d, hash %s, %d rules\n",
					info.Version, info.Hash, info.Rules)
			}
		}
		if n := srv.InvalidateTenants(); n > 0 {
			fmt.Printf("fixserve: SIGHUP dropped %d cached tenant engines\n", n)
		}
	}
	return application{handler: srv, banner: banner, onHUP: onHUP}, nil
}

// buildProxy assembles the shard router.
func buildProxy(peers string, replicas int, maxBody int64, probeInterval, probeTimeout time.Duration, logger *slog.Logger, tracer *trace.Tracer) (application, error) {
	var workers []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			workers = append(workers, strings.TrimRight(p, "/"))
		}
	}
	if len(workers) == 0 {
		return application{}, usageError("-peers is required in proxy mode")
	}
	px, err := server.NewProxy(server.ProxyConfig{
		Workers:       workers,
		Replicas:      replicas,
		MaxBodyBytes:  maxBody,
		ProbeInterval: probeInterval,
		ProbeTimeout:  probeTimeout,
		Logger:        logger,
		Tracer:        tracer,
	})
	if err != nil {
		return application{}, err
	}
	return application{
		handler: px,
		banner:  fmt.Sprintf("fixserve: proxy over %d workers (%d replicas/node)", len(workers), replicas),
		onHUP: func() {
			fmt.Println("fixserve: SIGHUP ignored in proxy mode (no rulesets held)")
		},
		close: px.Close,
	}, nil
}

func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
}

// serve runs the listener with the signal lifecycle shared by every mode:
// SIGHUP triggers the mode's reload action, SIGTERM/SIGINT drain
// gracefully within the drain budget.
func serve(app application, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Print the resolved address (":0" picks a free port) so operators and
	// the integration tests can find the listener.
	fmt.Printf("%s, listening on %s\n", app.banner, ln.Addr())

	hs := &http.Server{
		Handler:           app.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Read/write generously outlast the per-request repair deadline so
		// slow-but-legitimate streams are cut by the context (408), not by
		// an opaque connection reset.
		ReadTimeout:  3 * time.Minute,
		WriteTimeout: 3 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigs:
			switch sig {
			case syscall.SIGHUP:
				app.onHUP()
			case syscall.SIGTERM, syscall.SIGINT:
				fmt.Printf("fixserve: %v received, draining for up to %v\n", sig, drainTimeout)
				ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
				err := hs.Shutdown(ctx)
				cancel()
				if err != nil {
					return fmt.Errorf("shutdown: %w", err)
				}
				<-errc // Serve has returned http.ErrServerClosed
				if app.close != nil {
					app.close()
				}
				fmt.Println("fixserve: drained, bye")
				return nil
			}
		}
	}
}
