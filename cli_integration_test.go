package fixrule_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLIPipeline builds every command and drives the full workflow through
// their real binaries: generate data, mine nothing (rules come from a DSL
// file), check + resolve the ruleset, repair, explain, and stream.
// Skipped with -short (it shells out to the Go toolchain).
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("-short: skipping CLI integration test")
	}
	dir := t.TempDir()
	bin := map[string]string{}
	for _, name := range []string{"datagen", "rulecheck", "fixrepair"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		bin[name] = out
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin[name], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// 1. Generate a small uis corpus.
	out := run("datagen", "-dataset", "uis", "-rows", "400", "-out", dir)
	if !strings.Contains(out, "uis.clean.csv") {
		t.Fatalf("datagen output:\n%s", out)
	}

	// 2. Author a ruleset with a deliberate Example 8 conflict and resolve.
	rules := filepath.Join(dir, "travel.dsl")
	if err := os.WriteFile(rules, []byte(`
SCHEMA Travel(name, country, capital, city, conf)
RULE phi1p
  WHEN country = "China"
  IF capital IN ("Shanghai", "Hongkong", "Tokyo")
  THEN capital = "Beijing"
RULE phi3
  WHEN capital = "Tokyo", city = "Tokyo", conf = "ICDE"
  IF country IN ("China")
  THEN country = "Japan"
`), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed := filepath.Join(dir, "travel.fixed.dsl")
	out = run("rulecheck", "-rules", rules, "-resolve", "trim", "-stats", "-out", fixed)
	if !strings.Contains(out, "INCONSISTENT") || !strings.Contains(out, "wrote 2 rules") {
		t.Fatalf("rulecheck output:\n%s", out)
	}

	// 3. Repair the Figure 1 data with the resolved rules.
	data := filepath.Join(dir, "travel.csv")
	if err := os.WriteFile(data, []byte(
		"name,country,capital,city,conf\n"+
			"George,China,Beijing,Beijing,SIGMOD\n"+
			"Ian,China,Shanghai,Hongkong,ICDE\n"+
			"Peter,China,Tokyo,Tokyo,ICDE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired := filepath.Join(dir, "travel.repaired.csv")
	out = run("fixrepair", "-rules", fixed, "-data", data, "-out", repaired)
	if !strings.Contains(out, "applied 2 repairs") {
		t.Fatalf("fixrepair output:\n%s", out)
	}
	got, err := os.ReadFile(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "Ian,China,Beijing,Hongkong,ICDE") ||
		!strings.Contains(string(got), "Peter,Japan,Tokyo,Tokyo,ICDE") {
		t.Fatalf("repaired CSV:\n%s", got)
	}

	// 4. Explain a single row's repair.
	out = run("fixrepair", "-rules", fixed, "-data", data, "-explain", "2")
	if !strings.Contains(out, "phi3") || !strings.Contains(out, "Japan") {
		t.Fatalf("explain output:\n%s", out)
	}

	// 5. Stream mode produces the same repaired file.
	streamed := filepath.Join(dir, "travel.streamed.csv")
	out = run("fixrepair", "-rules", fixed, "-data", data, "-stream", "-out", streamed)
	if !strings.Contains(out, "streamed 3 rows") {
		t.Fatalf("stream output:\n%s", out)
	}
	got2, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(got) {
		t.Error("streamed output differs from batch output")
	}

	// 6. Parallel stream mode (-workers routes into the pipelined engine)
	// produces byte-identical output again.
	streamedPar := filepath.Join(dir, "travel.streamed-par.csv")
	out = run("fixrepair", "-rules", fixed, "-data", data, "-stream", "-workers", "2", "-out", streamedPar)
	if !strings.Contains(out, "streamed 3 rows") {
		t.Fatalf("parallel stream output:\n%s", out)
	}
	got3, err := os.ReadFile(streamedPar)
	if err != nil {
		t.Fatal(err)
	}
	if string(got3) != string(got) {
		t.Error("parallel streamed output differs from batch output")
	}

	// 7. Streaming with -log captures the same repair log batch mode
	// writes, and -revert applies it in reverse: the restored file is
	// byte-identical to the dirty original, at any worker count.
	logged := filepath.Join(dir, "travel.logged.csv")
	logFile := filepath.Join(dir, "repairs.csv")
	out = run("fixrepair", "-rules", fixed, "-data", data,
		"-stream", "-workers", "2", "-out", logged, "-log", logFile)
	if !strings.Contains(out, "wrote "+logFile) {
		t.Fatalf("stream -log output:\n%s", out)
	}
	restored := filepath.Join(dir, "travel.restored.csv")
	run("fixrepair", "-revert", logFile, "-data", logged, "-out", restored)
	original, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(original) {
		t.Errorf("revert of streamed log is not byte-identical:\n got %q\nwant %q", back, original)
	}

	// 8. -trace prints the chase of each repaired tuple: rule, rewrite,
	// and evidence, in the Explain vocabulary.
	out = run("fixrepair", "-rules", fixed, "-data", data, "-alg", "chase", "-trace")
	if !strings.Contains(out, "trace row 1") ||
		!strings.Contains(out, `"Shanghai" -> "Beijing"`) ||
		!strings.Contains(out, "assured [") {
		t.Fatalf("-trace output:\n%s", out)
	}

	// 9. -workers is rejected in modes that cannot use it.
	if out, err := exec.Command(bin["fixrepair"], "-rules", fixed, "-data", data,
		"-explain", "2", "-workers", "4").CombinedOutput(); err == nil {
		t.Fatalf("-explain -workers 4 should fail, got:\n%s", out)
	} else if !strings.Contains(string(out), "-workers") {
		t.Fatalf("-explain -workers error should mention -workers:\n%s", out)
	}
}

// TestFixserveLifecycle drives the real fixserve binary end to end:
// startup on a free port, /healthz, /repair, /metrics, a hot /reload that
// changes repair behaviour, and a SIGTERM graceful shutdown that lets an
// in-flight streaming request complete before the process exits 0.
// Skipped with -short (it shells out to the Go toolchain).
func TestFixserveLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("-short: skipping fixserve integration test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fixserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fixserve")
	build.Env = os.Environ()
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building fixserve: %v\n%s", err, msg)
	}

	ruleFile := func(fact string) string {
		return fmt.Sprintf(`SCHEMA Travel(name, country, capital, city, conf)
RULE phi1
  WHEN country = "China"
  IF capital IN ("Shanghai", "Hongkong")
  THEN capital = %q
`, fact)
	}
	rules := filepath.Join(dir, "serve.dsl")
	if err := os.WriteFile(rules, []byte(ruleFile("Beijing")), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-rules", rules, "-addr", "127.0.0.1:0", "-drain-timeout", "10s",
		"-trace-sample", "1", "-log-level", "warn")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the resolved listen address.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("fixserve produced no output")
	}
	first := scanner.Text()
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	i := strings.LastIndex(first, "listening on ")
	if i < 0 {
		t.Fatalf("startup line %q has no address", first)
	}
	base := "http://" + strings.TrimSpace(first[i+len("listening on "):])

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	resp, err := http.Post(base+"/repair", "application/json",
		strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	repairBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(repairBody), "Beijing") {
		t.Fatalf("/repair = %d %q", resp.StatusCode, repairBody)
	}
	if v := resp.Header.Get("X-Fixserve-Ruleset-Version"); v != "1" {
		t.Errorf("ruleset version header = %q, want 1", v)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Error("/repair response missing X-Request-Id")
	}
	tp := resp.Header.Get("traceparent")
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Errorf("/repair traceparent = %q", tp)
	}

	// At -trace-sample 1 the repair request's trace is in the ring, and
	// the drill-down view carries its request ID and chase steps.
	if code, body := get("/debug/traces/" + tp[3:35]); code != 200 ||
		!strings.Contains(body, reqID) || !strings.Contains(body, "chase.step") {
		t.Fatalf("/debug/traces/<id> = %d\n%s", code, body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `fixserve_requests_total{endpoint="/repair"} 1`) ||
		!strings.Contains(body, "fixserve_ruleset_version 1") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}

	// Hot reload: rewrite the rule file with a different fact and ask the
	// server to swap; repairs must change behaviour, version must bump.
	if err := os.WriteFile(rules, []byte(ruleFile("Peking")), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(reloadBody), `"ruleset_version": 2`) {
		t.Fatalf("/reload = %d %q", resp.StatusCode, reloadBody)
	}
	resp, err = http.Post(base+"/repair", "application/json",
		strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	repairBody, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(repairBody), "Peking") {
		t.Fatalf("post-reload /repair did not use new ruleset: %q", repairBody)
	}

	// Graceful shutdown: start a streaming repair whose body arrives
	// slowly, SIGTERM mid-flight, then finish the upload. The response
	// must complete and the process must exit 0.
	pr, pw := io.Pipe()
	type result struct {
		code int
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/repair/csv", "text/csv", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{code: resp.StatusCode, body: body}
	}()
	io.WriteString(pw, "name,country,capital,city,conf\nIan,China,Shanghai,Hongkong,ICDE\n")
	time.Sleep(200 * time.Millisecond) // let the request reach the handler
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // listener closes while we're in flight
	io.WriteString(pw, "Amy,China,Hongkong,Paris,VLDB\n")
	pw.Close()

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed across SIGTERM: %v", r.err)
	}
	if r.code != 200 || !bytes.Contains(r.body, []byte("Ian,China,Peking")) ||
		!bytes.Contains(r.body, []byte("Amy,China,Peking")) {
		t.Fatalf("in-flight response = %d %q", r.code, r.body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("fixserve exit: %v", err)
	}
	// The listener is gone: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after graceful shutdown")
	}
}

// TestFixserveShardedLifecycle stands up the full sharded topology from
// real binaries: two `-mode worker` processes over a per-tenant rules
// directory and one `-mode proxy` in front. It exercises routing through
// the ring, per-tenant hot deploy via the proxy, the worker-mode refusal
// of legacy engine routes, and SIGTERM drain of every process.
// Skipped with -short (it shells out to the Go toolchain).
func TestFixserveShardedLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("-short: skipping sharded fixserve integration test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fixserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fixserve")
	build.Env = os.Environ()
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building fixserve: %v\n%s", err, msg)
	}

	tenantRule := func(fact string) string {
		return fmt.Sprintf(`SCHEMA Travel(name, country, capital, city, conf)
RULE phi1
  WHEN country = "China"
  IF capital IN ("Shanghai", "Hongkong")
  THEN capital = %q
`, fact)
	}
	rulesDir := filepath.Join(dir, "tenants")
	if err := os.Mkdir(rulesDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for tenant, fact := range map[string]string{"acme": "Beijing", "globex": "Peking"} {
		if err := os.WriteFile(filepath.Join(rulesDir, tenant+".dsl"),
			[]byte(tenantRule(fact)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// start launches one fixserve process and returns its base URL parsed
	// from the startup line.
	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, append(args, "-addr", "127.0.0.1:0",
			"-drain-timeout", "10s", "-log-level", "warn")...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		scanner := bufio.NewScanner(stdout)
		if !scanner.Scan() {
			t.Fatalf("fixserve %v produced no output", args)
		}
		first := scanner.Text()
		go io.Copy(io.Discard, stdout)
		i := strings.LastIndex(first, "listening on ")
		if i < 0 {
			t.Fatalf("startup line %q has no address", first)
		}
		return cmd, "http://" + strings.TrimSpace(first[i+len("listening on "):])
	}

	w1, w1URL := start("-mode", "worker", "-tenant-rules", rulesDir)
	w2, w2URL := start("-mode", "worker", "-tenant-rules", rulesDir)
	proxy, proxyURL := start("-mode", "proxy", "-peers", w1URL+","+w2URL)

	post := func(base, path, contentType, body string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s%s: %v", base, path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b), resp.Header
	}
	ian := `{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`

	// Both tenants repair through the proxy with their own rulesets,
	// wherever the ring placed them.
	if code, body, hdr := post(proxyURL, "/t/acme/repair", "application/json", ian); code != 200 ||
		!strings.Contains(body, "Beijing") || hdr.Get("X-Fixserve-Tenant") != "acme" {
		t.Fatalf("/t/acme/repair via proxy = %d %q", code, body)
	}
	if code, body, _ := post(proxyURL, "/t/globex/repair", "application/json", ian); code != 200 ||
		!strings.Contains(body, "Peking") {
		t.Fatalf("/t/globex/repair via proxy = %d %q", code, body)
	}

	// The proxy's /shard endpoint names both workers and acme's owner.
	resp, err := http.Get(proxyURL + "/shard?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	shardBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(shardBody), w1URL) || !strings.Contains(string(shardBody), w2URL) ||
		!strings.Contains(string(shardBody), `"owner"`) {
		t.Fatalf("/shard = %s", shardBody)
	}

	// Per-tenant hot deploy: rewrite acme's rule file, reload through the
	// proxy, and the next proxied repair uses the new ruleset.
	if err := os.WriteFile(filepath.Join(rulesDir, "acme.dsl"),
		[]byte(tenantRule("Peiping")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := post(proxyURL, "/t/acme/reload", "", ""); code != 200 ||
		!strings.Contains(body, `"ruleset_version": 2`) {
		t.Fatalf("/t/acme/reload via proxy = %d %q", code, body)
	}
	if code, body, _ := post(proxyURL, "/t/acme/repair", "application/json", ian); code != 200 ||
		!strings.Contains(body, "Peiping") {
		t.Fatalf("post-reload /t/acme/repair via proxy = %d %q", code, body)
	}
	// globex is untouched by acme's deploy.
	if _, body, _ := post(proxyURL, "/t/globex/repair", "application/json", ian); !strings.Contains(body, "Peking") {
		t.Fatalf("globex changed behaviour after acme reload: %q", body)
	}

	// Workers run tenant routes only: the legacy engine surface answers
	// 404 with the stable no-default-ruleset envelope.
	if code, body, _ := post(w1URL, "/repair", "application/json", ian); code != 404 ||
		!strings.Contains(body, "no_default_ruleset") {
		t.Fatalf("worker /repair = %d %q, want 404 no_default_ruleset", code, body)
	}
	// But their probes and metrics still serve (the ops surface survives).
	for _, u := range []string{w1URL, w2URL} {
		r, err := http.Get(u + "/healthz")
		if err != nil || r.StatusCode != 200 {
			t.Fatalf("worker %s /healthz: %v %v", u, err, r)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	// SIGTERM everything; each process must drain and exit 0.
	for _, c := range []*exec.Cmd{proxy, w1, w2} {
		if err := c.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for name, c := range map[string]*exec.Cmd{"proxy": proxy, "worker1": w1, "worker2": w2} {
		if err := c.Wait(); err != nil {
			t.Fatalf("%s exit after SIGTERM: %v", name, err)
		}
	}
	if _, err := http.Get(proxyURL + "/healthz"); err == nil {
		t.Error("proxy still accepting after graceful shutdown")
	}
}
