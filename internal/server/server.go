// Package server exposes a fixing-rule repairer over HTTP, the deployment
// shape the paper's data-monitoring scenario calls for: incoming tuples are
// repaired on the wire, with no user in the loop. Standard library only.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /rules        the ruleset, as DSL (default) or JSON (?format=json)
//	GET  /rules/stats  rule-count / size / per-target statistics
//	POST /repair       JSON {"tuples": [[...], ...]} → repaired tuples + steps
//	POST /repair/csv   CSV stream in (header must match schema), CSV out
//	POST /explain      JSON {"tuple": [...]} → repair provenance
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/ruleio"
	"fixrule/internal/schema"
)

// Server handles repair requests against one fixed, consistent ruleset.
type Server struct {
	rep *repair.Repairer
	mux *http.ServeMux
}

// New builds the HTTP handler for a repairer.
func New(rep *repair.Repairer) *Server {
	s := &Server{rep: rep, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/rules", s.handleRules)
	s.mux.HandleFunc("/rules/stats", s.handleStats)
	s.mux.HandleFunc("/repair", s.handleRepair)
	s.mux.HandleFunc("/repair/csv", s.handleRepairCSV)
	s.mux.HandleFunc("/explain", s.handleExplain)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "dsl":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, ruleio.Format(s.rep.Ruleset()))
	case "json":
		data, err := ruleio.MarshalJSON(s.rep.Ruleset())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		http.Error(w, "unknown format (want dsl or json)", http.StatusBadRequest)
	}
}

// statsResponse is the /rules/stats payload.
type statsResponse struct {
	Schema    string         `json:"schema"`
	Rules     int            `json:"rules"`
	Size      int            `json:"size"`
	PerTarget map[string]int `json:"per_target"`
	Negatives int            `json:"negative_patterns"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rs := s.rep.Ruleset()
	resp := statsResponse{
		Schema:    rs.Schema().String(),
		Rules:     rs.Len(),
		Size:      rs.Size(),
		PerTarget: make(map[string]int),
	}
	for _, rule := range rs.Rules() {
		resp.PerTarget[rule.Target()]++
		resp.Negatives += rule.NegativeSize()
	}
	writeJSON(w, resp)
}

// repairRequest is the /repair request body.
type repairRequest struct {
	Tuples [][]string `json:"tuples"`
	// Algorithm selects "linear" (default) or "chase".
	Algorithm string `json:"algorithm,omitempty"`
}

// repairedTuple is one row of the /repair response.
type repairedTuple struct {
	Tuple []string     `json:"tuple"`
	Steps []stepRecord `json:"steps,omitempty"`
}

type stepRecord struct {
	Rule string `json:"rule"`
	Attr string `json:"attr"`
	From string `json:"from"`
	To   string `json:"to"`
}

type repairResponse struct {
	Repaired []repairedTuple `json:"repaired"`
	Changed  int             `json:"changed"`
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req repairRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	arity := s.rep.Ruleset().Schema().Arity()
	resp := repairResponse{Repaired: make([]repairedTuple, 0, len(req.Tuples))}
	for i, vals := range req.Tuples {
		if len(vals) != arity {
			http.Error(w, fmt.Sprintf("tuple %d has %d values, schema needs %d", i, len(vals), arity),
				http.StatusBadRequest)
			return
		}
		fixed, steps := s.rep.RepairTuple(schema.Tuple(vals), alg)
		rt := repairedTuple{Tuple: fixed}
		for _, st := range steps {
			rt.Steps = append(rt.Steps, stepRecord{
				Rule: st.Rule.Name(), Attr: st.Attr, From: st.From, To: st.To,
			})
		}
		if len(steps) > 0 {
			resp.Changed++
		}
		resp.Repaired = append(resp.Repaired, rt)
	}
	writeJSON(w, resp)
}

func (s *Server) handleRepairCSV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	alg, err := parseAlgorithm(r.URL.Query().Get("algorithm"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if _, err := s.rep.StreamCSV(r.Body, w, alg); err != nil {
		// The response may be partially written; the error text still
		// reaches the client as the final body content.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
}

// explainRequest is the /explain request body.
type explainRequest struct {
	Tuple     []string `json:"tuple"`
	Algorithm string   `json:"algorithm,omitempty"`
}

type explainResponse struct {
	Input   []string     `json:"input"`
	Output  []string     `json:"output"`
	Steps   []stepRecord `json:"steps,omitempty"`
	Assured []string     `json:"assured,omitempty"`
	Text    string       `json:"text"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Tuple) != s.rep.Ruleset().Schema().Arity() {
		http.Error(w, "tuple arity mismatch", http.StatusBadRequest)
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e := s.rep.Explain(schema.Tuple(req.Tuple), alg)
	resp := explainResponse{
		Input: e.Input, Output: e.Output, Assured: e.Assured, Text: e.String(),
	}
	for _, st := range e.Steps {
		resp.Steps = append(resp.Steps, stepRecord{
			Rule: st.Rule.Name(), Attr: st.Attr, From: st.From, To: st.To,
		})
	}
	writeJSON(w, resp)
}

func parseAlgorithm(name string) (repair.Algorithm, error) {
	switch name {
	case "", "linear", "lrepair":
		return repair.Linear, nil
	case "chase", "crepair":
		return repair.Chase, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want linear or chase)", name)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// SortedTargets returns the rule targets in deterministic order; exposed
// for diagnostic tooling built on the server.
func SortedTargets(rs *core.Ruleset) []string {
	set := map[string]struct{}{}
	for _, r := range rs.Rules() {
		set[r.Target()] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
