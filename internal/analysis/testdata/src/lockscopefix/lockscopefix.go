// Package lockscopefix is the lockscope golden fixture: critical
// sections that block, branch imbalances, and the sanctioned shapes
// that must stay silent.
package lockscopefix

import (
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	state int
	work  chan int
}

// blockingUnderLock holds the mutex across a channel receive.
func (s *server) blockingUnderLock() int {
	s.mu.Lock()
	v := <-s.work // want `lock-across-blocking`
	s.mu.Unlock()
	return v
}

// deferHeld: the deferred unlock only runs at return, so the send still
// happens with the lock held.
func (s *server) deferHeld(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.work <- v // want `lock-across-blocking`
}

// sleepUnderRead holds the read side across a sleep; readers stall
// writers too.
func (s *server) sleepUnderRead() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `lock-across-blocking`
	s.rw.RUnlock()
}

// imbalance locks on one branch only: the paths merge disagreeing about
// whether s.mu is held.
func (s *server) imbalance(cond bool) {
	if cond {
		s.mu.Lock()
	}
	s.state++ // want `lock-imbalance`
	if cond {
		s.mu.Unlock()
	}
}

// doubleLock re-locks a held, non-reentrant mutex: self-deadlock. The
// second unlock is reported too — must-held state does not nest, so
// after the pair of locks collapses, one unlock is left unmatched.
func (s *server) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `lock-imbalance`
	s.state++
	s.mu.Unlock()
	s.mu.Unlock() // want `lock-imbalance`
}

// unlockAdrift has no matching lock on any path.
func (s *server) unlockAdrift() {
	s.state++
	s.mu.Unlock() // want `lock-imbalance`
}

// literalBody: a goroutine body owes the same discipline as a
// declaration.
func (s *server) literalBody(done chan struct{}) {
	go func() {
		s.mu.Lock()
		<-s.work // want `lock-across-blocking`
		s.mu.Unlock()
		close(done)
	}()
	<-done
}

// shrink is the sanctioned pattern: copy under lock, unlock, then block.
func (s *server) shrink() {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	s.work <- v
}

// balanced branches agree on the lock state at every merge.
func (s *server) balanced(cond bool) {
	s.mu.Lock()
	if cond {
		s.state++
	} else {
		s.state--
	}
	s.mu.Unlock()
}

// lockHelper intentionally leaves the mutex held for its caller — no
// disagreeing paths, no finding.
func (s *server) lockHelper() {
	s.mu.Lock()
	s.state++
}

// selectDefault never blocks: the default arm makes the select a poll.
func (s *server) selectDefault() {
	s.mu.Lock()
	select {
	case v := <-s.work:
		s.state = v
	default:
	}
	s.mu.Unlock()
}
