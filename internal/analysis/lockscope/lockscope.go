// Package lockscope enforces the serving stack's lock discipline with a
// CFG/dataflow analysis of every function that touches a
// sync.Mutex/RWMutex:
//
//   - lock-across-blocking: a mutex is held (on every path) across an
//     operation that can block — a channel send or receive, a select
//     without default, a range over a channel, time.Sleep,
//     sync.WaitGroup.Wait, an HTTP round-trip, net dialing,
//     net.Conn/os.File I/O, or an os/exec wait. Holding a lock across a
//     block stalls every other goroutine contending for it; the PR-7
//     reload/cold-get race came from exactly this tension — the registry
//     must NOT hold its lock across the singleflight compile, which in
//     turn forces the re-check-under-lock pattern the fix introduced.
//
//   - lock-imbalance: control-flow paths merge with the mutex held on
//     some and released on others, a Lock runs while the same mutex is
//     already held (sync mutexes are not reentrant: self-deadlock), or
//     an Unlock has no matching Lock on any path.
//
// The analysis is a must-held forward dataflow over the intra-procedural
// CFG (internal/analysis/cfg, internal/analysis/dataflow): `defer
// x.Unlock()` releases at every return; RLock/RUnlock track separately
// from Lock/Unlock; TryLock is ignored (its held-state is data-dependent).
// Functions that only ever Lock without Unlock (intentional lock helpers,
// and functions documented to be called with the lock held) produce no
// imbalance finding — only *disagreeing* paths do.
//
// What it deliberately does not see: blocking through interfaces
// (io.Writer.Write may be a socket), lock handoff across function
// boundaries, and aliasing (two names for one mutex). Those trades keep
// the false-positive rate at CI-gate level; the race detector and the
// server's fault batteries cover the remainder dynamically.
package lockscope

import (
	"go/ast"

	"fixrule/internal/analysis"
	"fixrule/internal/analysis/cfg"
	"fixrule/internal/analysis/dataflow"
)

// Analyzer is the lockscope check.
var Analyzer = &analysis.Analyzer{
	Name:  "lockscope",
	Doc:   "mutexes must not be held across blocking operations, and lock/unlock must balance across branches",
	Codes: []string{"lock-across-blocking", "lock-imbalance"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Function literals are separate functions with separate
			// lock scopes (a goroutine body that locks owes the same
			// discipline).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	lf := dataflow.AnalyzeLocks(pass.TypesInfo, cfg.New(body))
	if !lf.HasLocks() {
		return
	}
	for _, f := range lf.Findings() {
		switch f.Kind {
		case dataflow.BlockingWhileHeld:
			pass.Reportf(f.Pos, "lock-across-blocking",
				"%s is held across %s; shrink the critical section (copy what you need, unlock, then block) or the lock stalls every contender",
				f.Key, f.Desc)
		case dataflow.MergeImbalance:
			pass.Reportf(f.Pos, "lock-imbalance",
				"control-flow paths merge with %s held on some and released on others; balance the branches or use defer",
				f.Key)
		case dataflow.DoubleLock:
			pass.Reportf(f.Pos, "lock-imbalance",
				"%s is locked while already held on every path — sync mutexes are not reentrant, this self-deadlocks",
				f.Key)
		case dataflow.UnlockWithoutLock:
			pass.Reportf(f.Pos, "lock-imbalance",
				"%s is unlocked without a lock on any path through this function",
				f.Key)
		}
	}
}
