package server

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/iotest"
	"time"

	"fixrule/internal/core"
	"fixrule/internal/trace"
)

// proxyFixture is a two-worker shard topology behind one proxy, each
// worker a tenants-only node over the same map loader.
type proxyFixture struct {
	proxy   *Proxy
	front   *httptest.Server
	workers []*httptest.Server
	servers []*Server
	loader  *mapLoader
}

func newProxyFixture(t *testing.T, sampleRate float64) *proxyFixture {
	t.Helper()
	loader := newMapLoader(map[string]*core.Ruleset{
		"acme":    travelRuleset("Beijing"),
		"globex":  travelRuleset("Peking"),
		"initech": travelRuleset("Ottawa"),
	})
	fx := &proxyFixture{loader: loader}
	var urls []string
	for i := 0; i < 2; i++ {
		s, err := NewTenantOnly(Config{
			Logger:  discardLogger,
			Tracer:  trace.New(trace.Options{SampleRate: sampleRate}),
			Tenants: &TenantOptions{Loader: loader.load},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewServer(s)
		t.Cleanup(w.Close)
		fx.servers = append(fx.servers, s)
		fx.workers = append(fx.workers, w)
		urls = append(urls, w.URL)
	}
	p, err := NewProxy(ProxyConfig{
		Workers: urls,
		Logger:  discardLogger,
		Tracer:  trace.New(trace.Options{SampleRate: sampleRate}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	fx.proxy = p
	fx.front = httptest.NewServer(p)
	t.Cleanup(fx.front.Close)
	return fx
}

// workerFor returns the httptest worker the ring routes a tenant to.
func (fx *proxyFixture) workerFor(tenant string) *httptest.Server {
	owner := fx.proxy.Ring().Owner(tenant)
	for _, w := range fx.workers {
		if w.URL == owner {
			return w
		}
	}
	return nil
}

func TestProxyForwardsToOwner(t *testing.T) {
	fx := newProxyFixture(t, 0)

	for _, tenant := range []string{"acme", "globex", "initech"} {
		resp := postJSON(t, fx.front.URL+"/t/"+tenant+"/repair", ianTuple)
		if resp.StatusCode != 200 {
			t.Fatalf("/t/%s/repair via proxy = %d %s", tenant, resp.StatusCode, readBody(t, resp))
		}
		if got := resp.Header.Get(TenantHeader); got != tenant {
			t.Errorf("%s = %q, want %q", TenantHeader, got, tenant)
		}
		// The proxy's request ID wins; the worker's stays reachable.
		if resp.Header.Get(RequestIDHeader) == "" {
			t.Error("proxied response missing proxy request ID")
		}
		if resp.Header.Get("X-Fixserve-Upstream-Request-Id") == "" {
			t.Error("proxied response missing upstream request ID")
		}
		readBody(t, resp)
	}

	// /shard reports the topology and per-tenant ownership that the
	// forwards above actually used.
	resp, err := http.Get(fx.front.URL + "/shard?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	var shard shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&shard); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shard.Mode != "proxy" || len(shard.Workers) != 2 {
		t.Errorf("/shard = %+v", shard)
	}
	if shard.Owner != fx.proxy.Ring().Owner("acme") {
		t.Errorf("/shard owner = %q, ring says %q", shard.Owner, fx.proxy.Ring().Owner("acme"))
	}

	// Non-tenant routes are refused: a shard router owns no rulesets.
	resp = postJSON(t, fx.front.URL+"/repair", ianTuple)
	if code := decodeEnvelope(t, resp); resp.StatusCode != 404 || code != codeNotProxied {
		t.Errorf("/repair via proxy = %d %s, want 404 %s", resp.StatusCode, code, codeNotProxied)
	}
	// Malformed tenants are rejected at the edge.
	resp = postJSON(t, fx.front.URL+"/t/BAD!/repair", ianTuple)
	if code := decodeEnvelope(t, resp); resp.StatusCode != 400 || code != codeBadTenant {
		t.Errorf("bad tenant via proxy = %d %s", resp.StatusCode, code)
	}
}

// TestProxyByteIdentity: a request through the proxy returns exactly the
// bytes the owning worker returns directly — JSON, streamed CSV, and
// columnar bodies.
func TestProxyByteIdentity(t *testing.T) {
	fx := newProxyFixture(t, 0)
	worker := fx.workerFor("acme")

	do := func(base, path, contentType, accept, body string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s = %d %s", path, resp.StatusCode, readBody(t, resp))
		}
		return readBody(t, resp)
	}

	csvBody := "name,country,capital,city,conf\n" +
		"Ian,China,Shanghai,Hongkong,ICDE\n" +
		"Amy,China,Hongkong,Paris,VLDB\n"

	direct := do(worker.URL, "/t/acme/repair", "application/json", "", ianTuple)
	proxied := do(fx.front.URL, "/t/acme/repair", "application/json", "", ianTuple)
	if direct != proxied {
		t.Errorf("JSON via proxy differs:\ndirect: %s\nproxied: %s", direct, proxied)
	}

	direct = do(worker.URL, "/t/acme/repair/csv", "text/csv", "", csvBody)
	proxied = do(fx.front.URL, "/t/acme/repair/csv", "text/csv", "", csvBody)
	if direct != proxied {
		t.Errorf("CSV via proxy differs:\ndirect: %q\nproxied: %q", direct, proxied)
	}

	fdirect := do(worker.URL, "/t/acme/repair/csv", "text/csv", "application/x-fcol", csvBody)
	fproxied := do(fx.front.URL, "/t/acme/repair/csv", "text/csv", "application/x-fcol", csvBody)
	if fdirect != fproxied {
		t.Errorf("columnar via proxy differs (%d vs %d bytes)", len(fdirect), len(fproxied))
	}
}

// TestProxyTracePropagation: the worker joins the proxy's trace — one
// trace ID across both hops — and the proxied response carries the
// proxy's traceparent.
func TestProxyTracePropagation(t *testing.T) {
	fx := newProxyFixture(t, 1)

	resp := postJSON(t, fx.front.URL+"/t/acme/repair", ianTuple)
	readBody(t, resp)
	tp := resp.Header.Get("traceparent")
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("proxied traceparent = %q", tp)
	}
	traceID := tp[3:35]

	// The owning worker recorded the same trace ID (visible through its
	// own tenant-scoped trace listing).
	worker := fx.workerFor("acme")
	wresp, err := http.Get(worker.URL + "/t/acme/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	listing := readBody(t, wresp)
	if !strings.Contains(listing, traceID) {
		t.Errorf("worker trace listing has no trace %s:\n%s", traceID, listing)
	}
}

// TestProxyPerTenantReload: a reload through the proxy hot-deploys on the
// owning worker, and subsequent proxied repairs see the new ruleset.
func TestProxyPerTenantReload(t *testing.T) {
	fx := newProxyFixture(t, 0)

	resp := postJSON(t, fx.front.URL+"/t/acme/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Beijing") {
		t.Fatalf("pre-reload body:\n%s", body)
	}
	fx.loader.set("acme", travelRuleset("Peking"))
	resp = postJSON(t, fx.front.URL+"/t/acme/reload", "")
	if resp.StatusCode != 200 {
		t.Fatalf("reload via proxy = %d %s", resp.StatusCode, readBody(t, resp))
	}
	if v := resp.Header.Get(VersionHeader); v != "2" {
		t.Errorf("reload version header via proxy = %q, want 2", v)
	}
	readBody(t, resp)
	resp = postJSON(t, fx.front.URL+"/t/acme/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("post-reload proxied repair:\n%s", body)
	}
}

// TestProxyDeadWorker: a tenant owned by an unreachable worker answers
// 502 upstream_unavailable with full correlation IDs, while tenants owned
// by the live worker keep serving.
func TestProxyDeadWorker(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{})
	live, err := NewTenantOnly(Config{
		Logger:  discardLogger,
		Tenants: &TenantOptions{Loader: loader.load},
	})
	if err != nil {
		t.Fatal(err)
	}
	liveSrv := httptest.NewServer(live)
	defer liveSrv.Close()

	// A listener that is closed immediately: connection refused, port
	// very unlikely to be reused during the test.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	p, err := NewProxy(ProxyConfig{
		Workers: []string{liveSrv.URL, deadURL},
		Logger:  discardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	// Find tenants on each side of the ring; provision the live one.
	var deadTenant, liveTenant string
	for i := 0; deadTenant == "" || liveTenant == ""; i++ {
		name := ringKeys(i + 1)[i]
		if p.Ring().Owner(name) == deadURL {
			if deadTenant == "" {
				deadTenant = name
			}
		} else if liveTenant == "" {
			liveTenant = name
		}
	}
	loader.set(liveTenant, travelRuleset("Beijing"))

	resp := postJSON(t, front.URL+"/t/"+deadTenant+"/repair", ianTuple)
	if resp.StatusCode != 502 {
		t.Fatalf("dead-worker tenant = %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" || resp.Header.Get("traceparent") == "" {
		t.Error("502 missing correlation headers")
	}
	var env errorEnvelope
	body := readBody(t, resp)
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("502 body is not an envelope: %v\n%s", err, body)
	}
	if env.Error.Code != codeUpstreamDown || env.Error.RequestID == "" || env.Error.TraceID == "" {
		t.Errorf("502 envelope = %+v", env.Error)
	}

	resp = postJSON(t, front.URL+"/t/"+liveTenant+"/repair", ianTuple)
	if resp.StatusCode != 200 {
		t.Errorf("live tenant alongside dead worker = %d", resp.StatusCode)
	}
	readBody(t, resp)
}

// TestProxyBodyTooLarge: an oversized POST body answers 413
// body_too_large — both when the length is declared up front and when a
// chunked upload trips the MaxBytesReader mid-forward — and neither case
// blames the (healthy) worker's upstream-error counter.
func TestProxyBodyTooLarge(t *testing.T) {
	fx := newProxyFixture(t, 0)
	p, err := NewProxy(ProxyConfig{
		Workers:      []string{fx.workers[0].URL, fx.workers[1].URL},
		MaxBodyBytes: 1 << 10,
		Logger:       discardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	upstreamErrors := func() int64 {
		var n int64
		for _, c := range p.upErrors {
			n += c.Load()
		}
		return n
	}

	big := strings.Repeat("x", 2<<10)
	for _, declared := range []bool{true, false} {
		var body io.Reader = strings.NewReader(big)
		if !declared {
			// An io.Reader that is not a *strings.Reader forces chunked
			// encoding: ContentLength stays -1 and the limit can only
			// trip while the transport reads the body mid-forward.
			body = io.MultiReader(strings.NewReader(big))
		}
		req, err := http.NewRequest(http.MethodPost, front.URL+"/t/acme/repair", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("declared=%v: %v", declared, err)
		}
		if code := decodeEnvelope(t, resp); resp.StatusCode != 413 || code != codeBodyTooLarge {
			t.Errorf("declared=%v oversized body = %d %s, want 413 %s",
				declared, resp.StatusCode, code, codeBodyTooLarge)
		}
		if n := upstreamErrors(); n != 0 {
			t.Errorf("declared=%v oversized body incremented upstream errors to %d", declared, n)
		}
	}

	// A body within the limit still forwards.
	resp := postJSON(t, front.URL+"/t/acme/repair", ianTuple)
	if resp.StatusCode != 200 {
		t.Errorf("in-limit body via limited proxy = %d %s", resp.StatusCode, readBody(t, resp))
	} else {
		readBody(t, resp)
	}
}

// TestProxyForwardHeaders: headers the client's Connection header
// nominates as hop-by-hop are not forwarded (RFC 9110 §7.6.1), and the
// proxy stamps X-Forwarded-For / X-Forwarded-Host so workers can tell
// proxied from direct traffic.
func TestProxyForwardHeaders(t *testing.T) {
	// Only the forwarded tenant request is captured: the proxy's prober
	// also hits this worker (/healthz, /quality) concurrently.
	var mu sync.Mutex
	var got http.Header
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/t/") {
			mu.Lock()
			got = r.Header.Clone()
			got.Set("Host", r.Host)
			mu.Unlock()
		}
		io.WriteString(w, "ok")
	}))
	defer worker.Close()

	p, err := NewProxy(ProxyConfig{Workers: []string{worker.URL}, Logger: discardLogger})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	req, err := http.NewRequest(http.MethodGet, front.URL+"/t/acme/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Connection", "close, X-Hop-Secret")
	req.Header.Set("X-Hop-Secret", "do-not-forward")
	req.Header.Set("X-Forwarded-For", "203.0.113.9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)

	mu.Lock()
	defer mu.Unlock()
	if v := got.Get("X-Hop-Secret"); v != "" {
		t.Errorf("Connection-nominated header forwarded: X-Hop-Secret=%q", v)
	}
	xff := got.Get("X-Forwarded-For")
	if !strings.HasPrefix(xff, "203.0.113.9, ") || !strings.HasSuffix(xff, "127.0.0.1") {
		t.Errorf("X-Forwarded-For = %q, want client chain + 127.0.0.1", xff)
	}
	if v := got.Get("X-Forwarded-Host"); v == "" {
		t.Error("X-Forwarded-Host not set on forwarded request")
	}
}

// errWriter is a ResponseWriter whose Write always fails — the shape of a
// client that hung up mid-download.
type errWriter struct{ header http.Header }

func (w *errWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *errWriter) WriteHeader(int) {}
func (w *errWriter) Write([]byte) (int, error) {
	return 0, errors.New("client gone")
}

// TestFlushCopyAttributesSides: flushCopy reports upstream read failures
// and client write failures separately, so a client hangup is never
// counted or logged as a worker fault.
func TestFlushCopyAttributesSides(t *testing.T) {
	upstreamCut := io.MultiReader(strings.NewReader("partial"),
		iotest.ErrReader(errors.New("worker died")))
	readErr, writeErr := flushCopy(
		&statusWriter{ResponseWriter: httptest.NewRecorder()}, upstreamCut)
	if readErr == nil || writeErr != nil {
		t.Errorf("upstream cut: readErr=%v writeErr=%v, want read-side only", readErr, writeErr)
	}

	readErr, writeErr = flushCopy(
		&statusWriter{ResponseWriter: &errWriter{}}, strings.NewReader("payload"))
	if writeErr == nil || readErr != nil {
		t.Errorf("client hangup: readErr=%v writeErr=%v, want write-side only", readErr, writeErr)
	}

	readErr, writeErr = flushCopy(
		&statusWriter{ResponseWriter: httptest.NewRecorder()}, strings.NewReader("clean"))
	if readErr != nil || writeErr != nil {
		t.Errorf("clean stream: readErr=%v writeErr=%v", readErr, writeErr)
	}
}

// TestProxyMidStreamWorkerDeath injects the worst fault: the worker dies
// after the status line and part of the body are already on the wire. The
// client must receive the partial stream followed by a trailing JSON
// error envelope carrying the request and trace IDs.
func TestProxyMidStreamWorkerDeath(t *testing.T) {
	// A hand-rolled worker that sends headers + partial CSV, then cuts
	// the connection without a terminating chunk.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				c.SetReadDeadline(time.Now().Add(2 * time.Second))
				c.Read(buf) // consume the request head; body may follow
				io.WriteString(c, "HTTP/1.1 200 OK\r\n"+
					"Content-Type: text/csv\r\n"+
					"Transfer-Encoding: chunked\r\n\r\n"+
					"2f\r\nname,country,capital,city,conf\nIan,China,Bei\r\n")
				// Connection dies mid-chunk, no terminal 0-length chunk.
			}(conn)
		}
	}()

	p, err := NewProxy(ProxyConfig{
		Workers: []string{"http://" + ln.Addr().String()},
		Logger:  discardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	resp := postJSON(t, front.URL+"/t/acme/repair/csv", "name,country,capital,city,conf\n")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (headers were already forwarded)", resp.StatusCode)
	}
	reqID := resp.Header.Get(RequestIDHeader)
	body := readBody(t, resp)
	if !strings.Contains(body, "name,country,capital") {
		t.Errorf("partial stream not forwarded:\n%s", body)
	}
	// The trailing envelope after the cut names the failure and carries
	// the correlation IDs.
	idx := strings.Index(body, `{"error"`)
	if idx < 0 {
		t.Fatalf("no trailing error envelope after mid-stream cut:\n%s", body)
	}
	var env errorEnvelope
	if err := json.Unmarshal([]byte(body[idx:]), &env); err != nil {
		t.Fatalf("trailing envelope unparsable: %v\n%s", err, body[idx:])
	}
	if env.Error.Code != codeUpstreamCut {
		t.Errorf("trailing code = %q, want %q", env.Error.Code, codeUpstreamCut)
	}
	if env.Error.RequestID != reqID || env.Error.TraceID == "" {
		t.Errorf("trailing envelope IDs = %+v, header reqID %q", env.Error, reqID)
	}
}
