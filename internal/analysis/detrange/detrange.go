// Package detrange enforces the engine's byte-identical-output invariant:
// Go map iteration order is deliberately randomised, so a bare range over
// a map must never feed user-visible ordered output — Result.Steps,
// PerRule renderings, the Prometheus exposition — or the sequential and
// parallel paths stop agreeing byte-for-byte.
//
// The analyzer flags a range-over-map loop when its body reaches an
// order-dependent sink:
//
//   - writing to an io.Writer (fmt.Fprint*, io.WriteString, or any
//     Write/WriteString/WriteByte/WriteRune method call) — the bytes land
//     in iteration order;
//   - sending on a channel — the receiver observes iteration order;
//   - appending to a slice that is never passed to a sort function later
//     in the same function — collect-then-sort is the sanctioned pattern
//     (see SortedTargets in internal/server).
//
// Loops that only aggregate (sums, counters, building another map) are
// order-independent and pass.
package detrange

import (
	"go/ast"
	"go/types"

	"fixrule/internal/analysis"
)

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name:  "detrange",
	Doc:   "bare map iteration must not construct user-visible ordered output",
	Codes: []string{"map-order-to-writer", "map-order-to-channel", "map-order-to-slice"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rng)
				return true
			})
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map-order-to-channel",
				"channel send inside a map range publishes randomised iteration order")
		case *ast.CallExpr:
			if isWriterSink(pass, n) {
				pass.Reportf(n.Pos(), "map-order-to-writer",
					"write to an io.Writer inside a map range emits randomised iteration order; collect and sort first")
			}
			if target, ok := appendTarget(info, n); ok {
				// A slice declared inside the loop body cannot accumulate
				// across iterations, so this range's order cannot leak
				// through it (any inner map range is checked separately).
				if rng.Body.Pos() <= target.Pos() && target.Pos() < rng.Body.End() {
					return true
				}
				if !sortedLater(info, fd, rng, target) {
					pass.Reportf(n.Pos(), "map-order-to-slice",
						"append inside a map range builds a slice in randomised order and %s is never sorted afterwards; sort it or iterate a sorted key slice",
						target.Name())
				}
			}
		}
		return true
	})
}

// isWriterSink reports whether the call writes bytes somewhere ordered:
// fmt.Fprint* / io.WriteString with an io.Writer first argument, or a
// Write/WriteString/WriteByte/WriteRune method on an io.Writer-ish
// receiver.
func isWriterSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	f := analysis.CalleeFunc(info, call)
	if f == nil {
		return false
	}
	if f.Pkg() != nil {
		switch f.Pkg().Path() {
		case "fmt":
			switch f.Name() {
			case "Fprintf", "Fprint", "Fprintln":
				return true
			}
		case "io":
			if f.Name() == "WriteString" {
				return true
			}
		}
	}
	switch f.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		t := info.TypeOf(sel.X)
		return t != nil && implementsWriter(pass, t)
	}
	return false
}

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(pass *analysis.Pass, t types.Type) bool {
	iface := writerIface(pass.Pkg)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// writerIface digs io.Writer out of the package's import graph (io is in
// every relevant closure via fmt; if it is genuinely absent there is
// nothing to write to either).
func writerIface(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "io" {
			if obj := p.Scope().Lookup("Writer"); obj != nil {
				iface, _ := obj.Type().Underlying().(*types.Interface)
				return iface
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// appendTarget returns the variable receiving an append inside the loop,
// when the call is `x = append(x, ...)` or `x := append(...)` shaped with
// an identifiable base variable.
func appendTarget(info *types.Info, call *ast.CallExpr) (*types.Var, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	base := analysis.RootIdent(call.Args[0])
	if base == nil {
		return nil, false
	}
	obj := info.Uses[base]
	if obj == nil {
		obj = info.Defs[base]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// sortedLater reports whether the appended-to variable is handed to a
// sorting function after the range loop, anywhere in the enclosing
// function: sort.Strings / sort.Ints / sort.Float64s / sort.Sort /
// sort.Slice / sort.SliceStable / sort.Stable, or slices.Sort*.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, target *types.Var) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := analysis.CalleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if f.Pkg().Path() != "sort" && f.Pkg().Path() != "slices" {
			return true
		}
		for _, arg := range call.Args {
			base := analysis.RootIdent(arg)
			if base == nil {
				continue
			}
			if obj := info.Uses[base]; obj == target {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
