# Standard developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint race cover bench bench-baseline bench-compare bench-json load fuzz experiments experiments-fast trace-demo clean

# Repair-engine benchmarks (the compiled hot path); -count for benchstat.
BENCH_REPAIR = -run '^$$' -bench 'Fig13Repair|RepairSingleTuple|CodedRepairTuple|StreamRepair' -benchmem -count 6 .

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (docs/ANALYSIS.md) plus formatting. fixvet
# enforces the engine's hot-path, padding, cancellation, error-surface,
# determinism and concurrency (goroutine-join, lock-scope, shared-capture,
# suppression-audit) invariants; gofmt must be a no-op outside testdata
# directories — analyzer fixtures and the CFG golden shapes deliberately
# hold want-comments and layouts gofmt would rewrite. The match is
# anchored on path segments so only real testdata/ trees are excluded.
lint:
	$(GO) run ./cmd/fixvet ./...
	@fmt_out=$$(gofmt -l . | grep -vE '(^|/)testdata/' || true); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Save a repair-benchmark baseline (run before a performance change).
bench-baseline:
	$(GO) test $(BENCH_REPAIR) | tee bench_baseline.txt

# Re-run the repair benchmarks and compare against bench_baseline.txt.
# benchstat is optional; without it the raw results are left in
# bench_new.txt for manual comparison (this repo adds no dependencies).
#
# Go stamps every benchmark name with the GOMAXPROCS it ran at (the -N
# suffix); comparing runs taken at different values is comparing different
# machines and silently flatters or damns a change. The guard refuses the
# comparison unless BENCH_ALLOW_CROSS_GOMAXPROCS=1 explicitly overrides.
bench-compare:
	@test -f bench_baseline.txt || { \
		echo "bench-compare: no bench_baseline.txt; run 'make bench-baseline' first"; exit 1; }
	$(GO) test $(BENCH_REPAIR) | tee bench_new.txt
	@base=$$(grep -oE '^Benchmark[^[:space:]]+' bench_baseline.txt | grep -oE '[0-9]+$$' | sort -un | tr '\n' ' '); \
	new=$$(grep -oE '^Benchmark[^[:space:]]+' bench_new.txt | grep -oE '[0-9]+$$' | sort -un | tr '\n' ' '); \
	if [ "$$base" != "$$new" ]; then \
		echo "bench-compare: GOMAXPROCS mismatch — baseline ran at [ $$base], this run at [ $$new]"; \
		if [ -n "$$BENCH_ALLOW_CROSS_GOMAXPROCS" ]; then \
			echo "bench-compare: BENCH_ALLOW_CROSS_GOMAXPROCS set; comparing anyway (numbers are NOT comparable)"; \
		else \
			echo "bench-compare: refusing the comparison; re-run 'make bench-baseline' at the current GOMAXPROCS,"; \
			echo "bench-compare: or set BENCH_ALLOW_CROSS_GOMAXPROCS=1 to override"; \
			exit 1; \
		fi; \
	fi
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_baseline.txt bench_new.txt; \
	else \
		echo "benchstat not installed; compare bench_baseline.txt vs bench_new.txt by hand"; \
		echo "(go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

# Regenerate BENCH_repair.json (whole-relation repair throughput) at the
# benchmark scale used by bench_test.go.
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_repair.json \
		-hosp-rows 20000 -hosp-rules 500 -uis-rows 8000 -uis-rules 100

# Open-loop load test against a running fixserve (docs/LOADTEST.md).
# Tunables: make load LOAD_URL=http://host:8080 LOAD_RPS=100:1000:5 \
#               LOAD_DURATION=30s LOAD_SLO='p99=50ms,err<0.1%' LOAD_FLAGS='-json load.json'
LOAD_URL ?= http://127.0.0.1:8080
LOAD_RPS ?= 200
LOAD_DURATION ?= 10s
LOAD_SLO ?=
LOAD_FLAGS ?=
load:
	$(GO) run ./cmd/fixload -url $(LOAD_URL) -rps $(LOAD_RPS) \
		-duration $(LOAD_DURATION) $(if $(LOAD_SLO),-slo '$(LOAD_SLO)') $(LOAD_FLAGS)

# Short fuzzing pass over the hardened decoders and the HTTP surface.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ruleio/
	$(GO) test -fuzz=FuzzUnmarshalJSON -fuzztime=30s ./internal/ruleio/
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzReadColumnar -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzCSVChunk -fuzztime=30s ./internal/store/
	$(GO) test -run '^$$' -fuzz=FuzzHandleRepairCSV -fuzztime=30s ./internal/server/
	$(GO) test -run '^$$' -fuzz=FuzzHandleRepairJSON -fuzztime=30s ./internal/server/
	$(GO) test -run '^$$' -fuzz=FuzzTenantRouting -fuzztime=30s ./internal/server/

# Regenerate every figure/table of the paper's Section 7 at paper scale
# (minutes); results land in results/.
experiments:
	mkdir -p results
	$(GO) run ./cmd/experiments -csv results | tee results/experiments_output.txt

experiments-fast:
	$(GO) run ./cmd/experiments -fast

# Worked tracing example: chase-repair the hospital fixture and print each
# repaired tuple's rule applications (docs/OBSERVABILITY.md).
trace-demo:
	$(GO) run ./cmd/fixrepair -rules testdata/hosp/rules.dsl \
		-data testdata/hosp/dirty.csv -alg chase -trace

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
