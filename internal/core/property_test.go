package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fixrule/internal/schema"
)

// genRule draws a random (syntactically valid) rule over a small universe.
func genRule(rng *rand.Rand, sch *schema.Schema, vals []string, name string) *Rule {
	attrs := append([]string(nil), sch.Attrs()...)
	rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	nEv := 1 + rng.Intn(2)
	ev := map[string]string{}
	for _, a := range attrs[:nEv] {
		ev[a] = vals[rng.Intn(len(vals))]
	}
	target := attrs[nEv]
	fact := vals[rng.Intn(len(vals))]
	var negs []string
	for _, v := range vals {
		if v != fact && rng.Intn(2) == 0 {
			negs = append(negs, v)
		}
	}
	if len(negs) == 0 {
		for _, v := range vals {
			if v != fact {
				negs = []string{v}
				break
			}
		}
	}
	return MustNew(name, sch, ev, target, negs, fact)
}

func genTuple(rng *rand.Rand, sch *schema.Schema, vals []string) schema.Tuple {
	t := make(schema.Tuple, sch.Arity())
	for i := range t {
		t[i] = vals[rng.Intn(len(vals))]
	}
	return t
}

// TestFixIdempotent: a fix is a fixpoint — fixing the fixed tuple changes
// nothing (Section 3.2, condition (2)).
func TestFixIdempotent(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	vals := []string{"0", "1", "2", "_"}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		rules := []*Rule{
			genRule(rng, sch, vals, "p"),
			genRule(rng, sch, vals, "q"),
			genRule(rng, sch, vals, "r"),
		}
		tup := genTuple(rng, sch, vals)
		fixed, _, _ := Fix(rules, tup)
		again, steps, _ := Fix(rules, fixed)
		if !again.Equal(fixed) || len(steps) != 0 {
			t.Fatalf("fix not a fixpoint: %v -> %v -> %v (%d extra steps)",
				tup, fixed, again, len(steps))
		}
	}
}

// TestFixTerminationBound: a fix applies at most |R| rules, because every
// proper application strictly grows the assured set (Section 4.1).
func TestFixTerminationBound(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	vals := []string{"0", "1", "2"}
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		var rules []*Rule
		for k := 0; k < 6; k++ {
			rules = append(rules, genRule(rng, sch, vals, "r"+string(rune('a'+k))))
		}
		tup := genTuple(rng, sch, vals)
		_, steps, a := Fix(rules, tup)
		if len(steps) > sch.Arity() {
			t.Fatalf("%d steps exceeds |R| = %d", len(steps), sch.Arity())
		}
		if a.Len() > sch.Arity() {
			t.Fatalf("assured set %v exceeds schema", a.Attrs())
		}
	}
}

// TestFixChangesOnlyTargets: every difference between input and fix is the
// fact of some applied rule, and evidence attributes used by applied rules
// are never modified.
func TestFixChangesOnlyTargets(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	vals := []string{"0", "1", "2", "_"}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		rules := []*Rule{
			genRule(rng, sch, vals, "p"),
			genRule(rng, sch, vals, "q"),
			genRule(rng, sch, vals, "r"),
		}
		tup := genTuple(rng, sch, vals)
		fixed, steps, _ := Fix(rules, tup)
		changedBySteps := map[int]string{}
		for _, s := range steps {
			changedBySteps[s.Rule.TargetIndex()] = s.To
		}
		for i := range tup {
			if tup[i] != fixed[i] {
				want, ok := changedBySteps[i]
				if !ok {
					t.Fatalf("attribute %d changed with no step", i)
				}
				if fixed[i] != want {
					t.Fatalf("attribute %d = %q, last step wrote %q", i, fixed[i], want)
				}
			}
		}
	}
}

// TestMatchesQuick: Matches agrees with its definition t[X] = tp[X] ∧
// t[B] ∈ Tp[B], via testing/quick over random tuples.
func TestMatchesQuick(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	rule := MustNew("q", sch, map[string]string{"a": "1"}, "b", []string{"2", "3"}, "4")
	f := func(a, b, c uint8) bool {
		vals := []string{"1", "2", "3", "4"}
		tup := schema.Tuple{vals[a%4], vals[b%4], vals[c%4]}
		want := tup[0] == "1" && (tup[1] == "2" || tup[1] == "3")
		return rule.Matches(tup) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAllFixesContainsSequentialFix: the exhaustive fixpoint search always
// contains the greedy chase's result.
func TestAllFixesContainsSequentialFix(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	vals := []string{"0", "1", "2"}
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 200; trial++ {
		rules := []*Rule{
			genRule(rng, sch, vals, "p"),
			genRule(rng, sch, vals, "q"),
			genRule(rng, sch, vals, "r"),
		}
		tup := genTuple(rng, sch, vals)
		fixed, _, _ := Fix(rules, tup)
		found := false
		for _, f := range AllFixes(rules, tup) {
			if f.Equal(fixed) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("greedy fix %v missing from AllFixes(%v)", fixed, tup)
		}
	}
}
