// Package heu implements the paper's first baseline, "Heu": cost-based
// heuristic FD repair after Bohannon et al., "A cost-based model and
// effective heuristic for repairing constraints by value modification"
// (SIGMOD 2005) — reference [7] of the paper.
//
// Repair proceeds in two phases:
//
//  1. Cost-based equalisation. Each FD violation group (tuples agreeing on
//     the LHS but not on an RHS attribute) is assigned the value minimising
//     the total edit-distance cost to the group's current values, and every
//     deviating cell is rewritten. Rounds repeat because repairing one FD
//     can surface violations of another.
//  2. LHS detachment. Groups that keep oscillating between overlapping FDs
//     (typically a tuple whose corrupted LHS value linked it to an
//     unrelated group — the "erroneously connected tuples" the paper
//     blames for heuristic imprecision) are resolved by rewriting one LHS
//     cell of each minority tuple to a fresh value, detaching it for good.
//     Value modification on the LHS is part of [7]'s cost model; fresh
//     values never re-match anything, so this phase converges and the
//     final database is consistent.
//
// Unlike fixing rules, Heu targets a consistent database: it repairs every
// detected violation, trading precision for recall — the trade-off
// Figures 10(a)/10(b) measure.
package heu

import (
	"fmt"
	"sort"

	"fixrule/internal/fd"
	"fixrule/internal/schema"
	"fixrule/internal/strutil"
)

// Config tunes the repair loop.
type Config struct {
	// MaxRounds caps each phase's rounds (0 = default 10).
	MaxRounds int
}

func (c Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 10
}

// Repair returns a repaired copy of dirty; the input is untouched.
func Repair(dirty *schema.Relation, fds []*fd.FD, cfg Config) *schema.Relation {
	out := dirty.Clone()

	// Phase 1: cost-based group equalisation.
	for round := 0; round < cfg.maxRounds(); round++ {
		violations := fd.Violations(out, fds)
		if len(violations) == 0 {
			return out
		}
		changed := false
		for _, v := range violations {
			if equalizeGroup(out, v) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: detach the oscillators.
	fresh := 0
	for round := 0; round < 2*cfg.maxRounds(); round++ {
		violations := fd.Violations(out, fds)
		if len(violations) == 0 {
			break
		}
		for _, v := range violations {
			detachMinority(out, v, &fresh)
		}
	}
	return out
}

// equalizeGroup assigns one violation group its minimum-cost value,
// reporting whether any cell changed. Candidates are the distinct values in
// the group; the cost of a candidate is the summed edit distance from every
// group cell to it, as in the cost model of [7] with unit weights.
func equalizeGroup(rel *schema.Relation, v *fd.Violation) bool {
	attrIdx := rel.Schema().MustIndex(v.Attr)

	cands := make([]string, 0, len(v.Groups))
	for val := range v.Groups {
		cands = append(cands, val)
	}
	sort.Strings(cands)
	if len(cands) < 2 {
		return false
	}
	best, bestCost := "", -1
	for _, cand := range cands {
		cost := 0
		for val, rows := range v.Groups {
			cost += strutil.Levenshtein(val, cand) * len(rows)
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = cand, cost
		}
	}

	changed := false
	for val, rows := range v.Groups {
		if val == best {
			continue
		}
		for _, r := range rows {
			// The group was computed on a snapshot; re-check that the row
			// still belongs (an earlier resolution this round may have
			// moved it).
			if rel.Row(r)[attrIdx] == val && v.FD.LHSKey(rel.Row(r)) == v.LHSKey {
				rel.Row(r)[attrIdx] = best
				changed = true
			}
		}
	}
	return changed
}

// detachMinority rewrites the first LHS attribute of every row not carrying
// the group's majority value to a fresh constant, permanently removing the
// row from the group.
func detachMinority(rel *schema.Relation, v *fd.Violation, fresh *int) {
	sch := rel.Schema()
	attrIdx := sch.MustIndex(v.Attr)
	lhsIdx := sch.MustIndex(v.FD.LHS()[0])

	majority := v.MajorityValue()
	for val, rows := range v.Groups {
		if val == majority {
			continue
		}
		for _, r := range rows {
			if rel.Row(r)[attrIdx] == val && v.FD.LHSKey(rel.Row(r)) == v.LHSKey {
				*fresh++
				rel.Row(r)[lhsIdx] = fmt.Sprintf("_h%d", *fresh)
			}
		}
	}
}
