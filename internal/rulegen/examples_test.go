package rulegen

import (
	"testing"

	"fixrule/internal/consistency"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
)

func TestFromExamplesPaperScenario(t *testing.T) {
	sch := travelSchema()
	// Two user corrections of the Figure 1 errors.
	examples := []Example{
		{
			Dirty: schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"},
			Clean: schema.Tuple{"Ian", "China", "Beijing", "Shanghai", "ICDE"},
		},
		{
			Dirty: schema.Tuple{"Mike", "Canada", "Toronto", "Toronto", "VLDB"},
			Clean: schema.Tuple{"Mike", "Canada", "Ottawa", "Toronto", "VLDB"},
		},
	}
	rs, err := FromExamples(sch, examples, []string{"country"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three rules: (China)→capital Beijing neg{Shanghai};
	// (China)→city Shanghai neg{Hongkong}; (Canada)→capital Ottawa
	// neg{Toronto}.
	if rs.Len() != 3 {
		t.Fatalf("mined %d rules: %v", rs.Len(), rs.Rules())
	}
	if conf := consistency.IsConsistent(rs, consistency.ByRule); conf != nil {
		t.Fatalf("example rules inconsistent: %v", conf)
	}
	// The mined rules repair a fresh tuple with the same error pattern.
	rep := repair.NewRepairer(rs)
	fixed, steps := rep.RepairTuple(schema.Tuple{"Zoe", "China", "Shanghai", "Hongkong", "KDD"}, repair.Linear)
	if len(steps) != 2 || fixed[2] != "Beijing" || fixed[3] != "Shanghai" {
		t.Errorf("repair of fresh tuple = %v (%d steps)", fixed, len(steps))
	}
}

func TestFromExamplesMergesNegatives(t *testing.T) {
	sch := schema.New("R", "k", "v")
	examples := []Example{
		{Dirty: schema.Tuple{"a", "x"}, Clean: schema.Tuple{"a", "good"}},
		{Dirty: schema.Tuple{"a", "y"}, Clean: schema.Tuple{"a", "good"}},
		{Dirty: schema.Tuple{"a", "x"}, Clean: schema.Tuple{"a", "good"}}, // duplicate
	}
	rs, err := FromExamples(sch, examples, []string{"k"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rules = %d", rs.Len())
	}
	r := rs.Rules()[0]
	if r.NegativeSize() != 2 || !r.IsNegative("x") || !r.IsNegative("y") {
		t.Errorf("negatives = %v", r.NegativePatterns())
	}
}

func TestFromExamplesSkipsCorrectedEvidence(t *testing.T) {
	sch := schema.New("R", "k", "v")
	// The evidence attribute itself was corrected: unusable.
	examples := []Example{
		{Dirty: schema.Tuple{"WRONG", "x"}, Clean: schema.Tuple{"a", "good"}},
	}
	rs, err := FromExamples(sch, examples, []string{"k"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Errorf("corrected-evidence example produced %d rules", rs.Len())
	}
}

func TestFromExamplesValidation(t *testing.T) {
	sch := schema.New("R", "k", "v")
	if _, err := FromExamples(sch, nil, nil, Config{}); err == nil {
		t.Error("empty evidence accepted")
	}
	if _, err := FromExamples(sch, nil, []string{"zzz"}, Config{}); err == nil {
		t.Error("unknown evidence attribute accepted")
	}
	bad := []Example{{Dirty: schema.Tuple{"a"}, Clean: schema.Tuple{"a", "b"}}}
	if _, err := FromExamples(sch, bad, []string{"k"}, Config{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestFromExamplesConflictingExamplesResolved(t *testing.T) {
	sch := schema.New("R", "k", "v")
	// Two examples disagree about the correct value for the same evidence:
	// the resolution workflow must leave a consistent (possibly smaller)
	// ruleset rather than an inconsistent one.
	examples := []Example{
		{Dirty: schema.Tuple{"a", "x"}, Clean: schema.Tuple{"a", "good"}},
		{Dirty: schema.Tuple{"a", "x"}, Clean: schema.Tuple{"a", "better"}},
	}
	rs, err := FromExamples(sch, examples, []string{"k"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if conf := consistency.IsConsistent(rs, consistency.ByRule); conf != nil {
		t.Fatalf("conflicting examples left inconsistency: %v", conf)
	}
}
