package fixrule

import (
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
)

// TestCompiledRepairMatchesReference cross-checks the compiled repair
// engine against the string-level reference semantics in internal/core on
// the two benchmark workloads (mined hosp and uis rulesets over dirtied
// relations). For each dataset it fixes every tuple row-by-row with
// core.Fix, then requires RepairRelation (both algorithms) and
// RepairRelationParallel to produce byte-identical tuples and the same
// total step count — the dictionary encoding, inverted lists, bitmask
// assured set and copy-on-write output must be pure optimisations.
func TestCompiledRepairMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		load func(testing.TB) *benchWorkload
	}{
		{"hosp", loadHosp},
		{"uis", loadUIS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.load(t)
			rules := w.rules.Rules()
			n := w.dirty.Len()

			refRows := make([]schema.Tuple, n)
			refSteps := 0
			for i := 0; i < n; i++ {
				fixed, steps, _ := core.Fix(rules, w.dirty.Row(i))
				refRows[i] = fixed
				refSteps += len(steps)
			}
			if refSteps == 0 {
				t.Fatalf("%s: reference repair made no fixes; workload is not exercising the engine", tc.name)
			}

			rep := repair.NewRepairer(w.rules)
			check := func(label string, res *repair.Result) {
				t.Helper()
				if res.Steps != refSteps {
					t.Errorf("%s: %d steps, reference made %d", label, res.Steps, refSteps)
				}
				if res.Relation.Len() != n {
					t.Fatalf("%s: %d rows out, %d in", label, res.Relation.Len(), n)
				}
				for i := 0; i < n; i++ {
					if !res.Relation.Row(i).Equal(refRows[i]) {
						t.Fatalf("%s: row %d = %v, reference %v (input %v)",
							label, i, res.Relation.Row(i), refRows[i], w.dirty.Row(i))
					}
				}
			}
			check("cRepair", rep.RepairRelation(w.dirty, repair.Chase))
			check("lRepair", rep.RepairRelation(w.dirty, repair.Linear))
			check("lRepair/parallel", rep.RepairRelationParallel(w.dirty, repair.Linear, 4))
			check("cRepair/parallel", rep.RepairRelationParallel(w.dirty, repair.Chase, 4))
		})
	}
}
