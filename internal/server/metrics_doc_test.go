package server

import (
	"net/http"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"fixrule/internal/core"
)

// scrapeFamilies GETs a /metrics endpoint and returns the metric family
// names from its `# TYPE <name> <kind>` lines.
func scrapeFamilies(t *testing.T, url string, into map[string]bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, _, ok := strings.Cut(rest, " "); ok {
				into[name] = true
			}
		}
	}
}

// TestMetricsDocumented is the metrics-hygiene guard: every family either
// node kind exposes — after real traffic, so lazily-registered series
// (per-rule windows, per-attribute counters, tenant series, probe gauges)
// are all present — must appear by name in docs/OBSERVABILITY.md. Adding
// a metric without documenting it fails this test.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}

	// A multi-tenant server with tenant and default traffic.
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)
	for _, path := range []string{"/repair", "/t/acme/repair"} {
		resp := postJSON(t, srv.URL+path, ianTuple)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// A proxy that has completed at least one probe round.
	front, _ := newFleetFixture(t, 1, 25*time.Millisecond)
	waitFleet(t, front.URL, func(f fleetResponse) bool { return f.Healthy == 1 })

	families := make(map[string]bool)
	scrapeFamilies(t, srv.URL, families)
	scrapeFamilies(t, front.URL, families)
	if len(families) < 30 {
		t.Fatalf("only %d metric families scraped — scrape broken?", len(families))
	}

	var missing []string
	for name := range families {
		if !strings.Contains(string(doc), "`"+name+"`") {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("metric families not documented in docs/OBSERVABILITY.md:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
