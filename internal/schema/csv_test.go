package schema

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Relation {
	r := NewRelation(travel())
	r.Append(Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"})
	r.Append(Tuple{"Ian", "China", "Shanghai", "Hong, kong", "ICDE"})
	return r
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(Diff(r, got)) != 0 {
		t.Errorf("round trip changed data: %v", got.Rows())
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	in := "name,country,capital,city,WRONG\na,b,c,d,e\n"
	if _, err := ReadCSV(strings.NewReader(in), travel()); err == nil {
		t.Fatal("mismatched header must fail")
	}
}

func TestReadCSVArityMismatch(t *testing.T) {
	in := "name,country,capital,city,conf\na,b,c\n"
	if _, err := ReadCSV(strings.NewReader(in), travel()); err == nil {
		t.Fatal("short row must fail")
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), travel()); err == nil {
		t.Fatal("empty input must fail (no header)")
	}
}

func TestSaveLoadCSV(t *testing.T) {
	r := sample()
	path := filepath.Join(t.TempDir(), "travel.csv")
	if err := SaveCSV(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() || len(Diff(r, got)) != 0 {
		t.Error("Save/Load round trip failed")
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv"), r.Schema()); err == nil {
		t.Error("loading a missing file must fail")
	}
}
