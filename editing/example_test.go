package editing_test

import (
	"fmt"
	"log"

	"fixrule"
	"fixrule/editing"
)

// The paper's Figure 2 scenario: an editing rule matches a tuple's country
// against the Cap master table and repairs the capital — after a user
// certifies the matched attribute. The result counts every certification,
// the cost metric the paper measures editing rules by.
func Example() {
	travel := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	clean := fixrule.NewRelation(travel)
	clean.Append(fixrule.Tuple{"-", "China", "Beijing", "-", "-"})
	clean.Append(fixrule.Tuple{"-", "Canada", "Ottawa", "-", "-"})

	master, err := editing.BuildMaster("Cap", clean, []string{"country", "capital"})
	if err != nil {
		log.Fatal(err)
	}
	eR1, err := editing.NewRule("eR1", travel, master.Schema(),
		map[string]string{"country": "country"}, "capital", "capital", nil)
	if err != nil {
		log.Fatal(err)
	}
	engine := editing.NewEngine(travel, master, []*editing.Rule{eR1})

	dirty := fixrule.NewRelation(travel)
	dirty.Append(fixrule.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"})
	res := engine.Repair(dirty, editing.AlwaysYes{})
	fmt.Println(res.Relation.Get(0, "capital"), res.Interactions)
	// Output: Beijing 1
}
