// Package gen exposes the repository's synthetic data generators and the
// paper's noise model as public API, so downstream users (and the examples)
// can reproduce the experimental workloads without touching internal
// packages.
package gen

import (
	"fixrule"
	"fixrule/internal/dataset"
	"fixrule/internal/noise"
)

// Dataset bundles a clean relation, its FDs and the noise-eligible
// attributes.
type Dataset struct {
	// Name is "hosp" or "uis".
	Name string
	// Rel is the clean (ground-truth) relation.
	Rel *fixrule.Relation
	// FDs are the dataset's functional dependencies (Section 7.1).
	FDs []*fixrule.FD
	// NoiseAttrs are the FD-related attributes noise may corrupt.
	NoiseAttrs []string
}

// Hosp generates the paper's hospital dataset: n rows over 17 attributes
// with 5 FDs. Deterministic in seed.
func Hosp(n int, seed int64) *Dataset { return wrap(dataset.Hosp(n, seed)) }

// UIS generates the paper's mailing-list dataset: n rows over 11 attributes
// with 3 FDs, sparse in repeated patterns. Deterministic in seed.
func UIS(n int, seed int64) *Dataset { return wrap(dataset.UIS(n, seed)) }

// ByName dispatches to Hosp or UIS.
func ByName(name string, n int, seed int64) (*Dataset, error) {
	d, err := dataset.ByName(name, n, seed)
	if err != nil {
		return nil, err
	}
	return wrap(d), nil
}

func wrap(d *dataset.Dataset) *Dataset {
	return &Dataset{Name: d.Name, Rel: d.Rel, FDs: d.FDs, NoiseAttrs: d.NoiseAttrs}
}

// NoiseError records one injected error.
type NoiseError = noise.Error

// Corrupt returns a dirty copy of clean, corrupting rate × rows tuples (one
// cell each) restricted to attrs; typoFraction of the errors are typos, the
// rest active-domain substitutions. Deterministic in seed.
func Corrupt(clean *fixrule.Relation, attrs []string, rate, typoFraction float64, seed int64) (*fixrule.Relation, []NoiseError, error) {
	return noise.Inject(clean, noise.Config{
		Rate: rate, TypoFraction: typoFraction, Attrs: attrs, Seed: seed,
	})
}
