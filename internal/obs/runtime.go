package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime attaches a Go runtime collector to the registry: live
// goroutine count, heap bytes, cumulative GC cycles and pause seconds, and
// process uptime, all refreshed on every /metrics scrape via a scrape
// hook. start anchors the uptime gauge (the process or server start time).
// A second call on the same registry is a no-op — the GC series are
// delta-accumulated, and a duplicate hook would double-count them.
func RegisterRuntime(r *Registry, start time.Time) {
	if !r.markRuntimeRegistered() {
		return
	}
	goroutines := r.Gauge("fixserve_goroutines",
		"Number of live goroutines.", "")
	heapAlloc := r.Gauge("fixserve_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", "")
	heapSys := r.Gauge("fixserve_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).", "")
	gcCycles := r.Counter("fixserve_gc_cycles_total",
		"Completed GC cycles since process start.", "")
	gcPause := r.FloatCounter("fixserve_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds.", "")
	uptime := r.FloatGauge("fixserve_uptime_seconds",
		"Seconds since the server started.", "")

	// The runtime exposes NumGC / PauseTotalNs as cumulative values; the
	// hook adds only the delta since the previous scrape so the registered
	// series keep real counter semantics. mu serialises concurrent scrapes
	// over that delta state.
	var mu sync.Mutex
	var lastGC uint32
	var lastPauseNs uint64
	r.AddScrapeHook(func() {
		mu.Lock()
		defer mu.Unlock()
		goroutines.Set(int64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		gcCycles.Add(int64(ms.NumGC - lastGC))
		lastGC = ms.NumGC
		gcPause.Add(float64(ms.PauseTotalNs-lastPauseNs) / 1e9)
		lastPauseNs = ms.PauseTotalNs
		uptime.Set(time.Since(start).Seconds())
	})
}
