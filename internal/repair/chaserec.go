package repair

import (
	"fmt"
	"sort"
	"sync"

	"fixrule/internal/core"
	"fixrule/internal/repairlog"
)

// This file is the chase recorder: per-tuple provenance of which rules
// fired in what order, captured at the point a repaired value is
// materialised back into strings. The coded hot path (repairEncoded and
// friends, //fix:hotpath) is never touched — recording hangs off the
// existing write-back loops, guarded by a single nil check, so the
// disabled path stays 0 allocs/op.
//
// Why strings are safe to capture there: a rule only fires when the
// target's current code matches a negative pattern, and containsCode never
// matches the OOV code — so the pre-write value of every applied step is
// an in-vocabulary string, byte-identical to what a repairlog would
// record. That equivalence is what the server's /debug/traces ↔ repairlog
// property test asserts.

// A TraceStep is one rule application on one tuple, in Explain vocabulary.
type TraceStep struct {
	// RuleIndex is the rule's position in Σ (see Repairer.RuleAt).
	RuleIndex int `json:"rule_index"`
	// Rule is the rule's name.
	Rule string `json:"rule"`
	// Evidence lists the attribute=value pairs the rule matched on.
	Evidence []string `json:"evidence,omitempty"`
	// Attr is the repaired attribute; From the negative-pattern value it
	// held; To the fact written.
	Attr string `json:"attr"`
	From string `json:"from"`
	To   string `json:"to"`
	// Assured lists the attributes validated correct after this step — the
	// assured-set evolution of the chase (evidence ∪ targets of the applied
	// prefix), sorted.
	Assured []string `json:"assured,omitempty"`
}

// A TupleTrace is the ordered rule-application sequence of one repaired
// tuple.
type TupleTrace struct {
	// Row is the 0-based row number in the repaired relation or stream.
	Row int `json:"row"`
	// Steps are the applications in chase order.
	Steps []TraceStep `json:"steps"`
}

// DefaultRecorderTuples caps recorded tuples when the caller does not
// choose: enough to diagnose a request, small enough that a sampled
// million-row stream cannot hold the whole chase history in memory.
const DefaultRecorderTuples = 256

// droppedSetMax bounds the exact distinct-dropped-row set. The cap exists
// so a capped recorder's memory is O(cap), not O(changed rows) — tracking
// every dropped row in a set would reintroduce exactly the unbounded
// growth the tuple cap prevents. Past this bound, drops are counted once
// per recorded step instead (an overcount for multi-step tuples).
const droppedSetMax = 4 * DefaultRecorderTuples

// A ChaseRecorder collects TupleTraces from a repair run. It is handed to
// the Recorded repair variants (and ParallelOptions.Recorder); a nil
// recorder is free. Recording locks a mutex, but only for tuples that were
// actually changed on sampled rows, so throughput impact tracks the error
// rate, not the row rate. Safe for concurrent use by parallel workers.
type ChaseRecorder struct {
	max  int
	rate float64
	seed uint64

	mu    sync.Mutex
	rows  map[int]*TupleTrace
	order []int
	// dropped tracks distinct rows the tuple cap rejected, exact up to
	// droppedSetMax entries; droppedOverflow counts the steps rejected
	// after the set filled, so memory stays bounded on any input.
	dropped         map[int]struct{}
	droppedOverflow int
}

// NewChaseRecorder builds a recorder. maxTuples caps how many distinct
// tuples are recorded (0 selects a default of 256; negative is unlimited —
// the streaming -log path needs every change). sampleRate in [0, 1]
// selects which rows are recorded, deterministically per row number from
// seed, so reruns over the same data record the same tuples.
func NewChaseRecorder(maxTuples int, sampleRate float64, seed uint64) *ChaseRecorder {
	if maxTuples == 0 {
		maxTuples = DefaultRecorderTuples
	}
	if sampleRate > 1 {
		sampleRate = 1
	}
	return &ChaseRecorder{
		max:     maxTuples,
		rate:    sampleRate,
		seed:    seed,
		rows:    make(map[int]*TupleTrace),
		dropped: make(map[int]struct{}),
	}
}

// splitmix64 is the per-row hash behind deterministic sampling.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SampleRow reports whether a recorder built with (sampleRate, seed)
// records the given row. Deterministic in (seed, row), so parallel and
// sequential runs record identical sets; exported so callers holding a
// rate-1 recorder (fixrepair's streaming -log path) can re-apply a
// stricter trace sampling to the captured tuples at print time.
func SampleRow(row int, sampleRate float64, seed uint64) bool {
	if sampleRate >= 1 {
		return true
	}
	if sampleRate <= 0 {
		return false
	}
	return float64(splitmix64(seed^uint64(row))>>11)/(1<<53) < sampleRate
}

// sampledRow decides whether a row is recorded.
func (cr *ChaseRecorder) sampledRow(row int) bool {
	return SampleRow(row, cr.rate, cr.seed)
}

// record captures one rule application. old must be the target cell's
// value immediately before the fact is written. Callers only invoke it for
// rows with at least one applied rule, inside their existing write-back
// loops — never from the coded hot path.
func (cr *ChaseRecorder) record(row int, pos int32, rule *core.Rule, old string) {
	if !cr.sampledRow(row) {
		return
	}
	cr.mu.Lock()
	defer cr.mu.Unlock()
	tt := cr.rows[row]
	if tt == nil {
		if cr.max >= 0 && len(cr.order) >= cr.max {
			if _, seen := cr.dropped[row]; !seen {
				if len(cr.dropped) < droppedSetMax {
					cr.dropped[row] = struct{}{}
				} else {
					cr.droppedOverflow++
				}
			}
			return
		}
		tt = &TupleTrace{Row: row}
		cr.rows[row] = tt
		cr.order = append(cr.order, row)
	}
	step := TraceStep{
		RuleIndex: int(pos),
		Rule:      rule.Name(),
		Attr:      rule.Target(),
		From:      old,
		To:        rule.Fact(),
	}
	// Assured evolution: previous step's assured set ∪ this rule's
	// evidence attributes ∪ its target, kept sorted.
	assured := map[string]struct{}{}
	if n := len(tt.Steps); n > 0 {
		for _, a := range tt.Steps[n-1].Assured {
			assured[a] = struct{}{}
		}
	}
	for _, a := range rule.EvidenceAttrs() {
		v, _ := rule.EvidenceValue(a)
		step.Evidence = append(step.Evidence, fmt.Sprintf("%s=%q", a, v))
		assured[a] = struct{}{}
	}
	assured[rule.Target()] = struct{}{}
	step.Assured = make([]string, 0, len(assured))
	for a := range assured {
		step.Assured = append(step.Assured, a)
	}
	sort.Strings(step.Assured)
	tt.Steps = append(tt.Steps, step)
}

// Tuples returns the recorded traces sorted by row, steps in application
// order. The result is a snapshot; recording may continue afterwards.
func (cr *ChaseRecorder) Tuples() []TupleTrace {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	rows := make([]int, len(cr.order))
	copy(rows, cr.order)
	sort.Ints(rows)
	out := make([]TupleTrace, 0, len(rows))
	for _, r := range rows {
		out = append(out, *cr.rows[r])
	}
	return out
}

// DroppedTuples reports how many changed tuples the cap discarded. The
// count is exact (distinct rows) until droppedSetMax distinct rows have
// been dropped; beyond that it is an upper bound, since further drops are
// counted once per rejected step rather than deduplicated by row.
func (cr *ChaseRecorder) DroppedTuples() int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return len(cr.dropped) + cr.droppedOverflow
}

// Len reports how many tuples have been recorded.
func (cr *ChaseRecorder) Len() int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return len(cr.order)
}

// Log converts the recorded steps into repairlog entries, ordered by row
// then application order — exactly the entries a batch repair of the same
// data would log. Only meaningful when the recorder saw every change
// (sampleRate 1, unlimited tuples); the streaming -log path relies on
// this.
func (cr *ChaseRecorder) Log() []repairlog.Entry {
	tuples := cr.Tuples()
	var entries []repairlog.Entry
	for _, tt := range tuples {
		for _, s := range tt.Steps {
			entries = append(entries, repairlog.Entry{Row: tt.Row, Attr: s.Attr, Old: s.From, New: s.To})
		}
	}
	return entries
}
