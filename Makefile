# Standard developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint race cover bench bench-baseline bench-compare bench-json fuzz experiments experiments-fast trace-demo clean

# Repair-engine benchmarks (the compiled hot path); -count for benchstat.
BENCH_REPAIR = -run '^$$' -bench 'Fig13Repair|RepairSingleTuple|CodedRepairTuple|StreamRepair' -benchmem -count 6 .

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (docs/ANALYSIS.md) plus formatting. fixvet
# enforces the engine's hot-path, padding, cancellation, error-surface and
# determinism invariants; gofmt must be a no-op outside the analyzer
# fixtures (which deliberately hold unformatted want-comments).
lint:
	$(GO) run ./cmd/fixvet ./...
	@fmt_out=$$(gofmt -l . | grep -v testdata || true); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Save a repair-benchmark baseline (run before a performance change).
bench-baseline:
	$(GO) test $(BENCH_REPAIR) | tee bench_baseline.txt

# Re-run the repair benchmarks and compare against bench_baseline.txt.
# benchstat is optional; without it the raw results are left in
# bench_new.txt for manual comparison (this repo adds no dependencies).
bench-compare:
	$(GO) test $(BENCH_REPAIR) | tee bench_new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_baseline.txt bench_new.txt; \
	else \
		echo "benchstat not installed; compare bench_baseline.txt vs bench_new.txt by hand"; \
		echo "(go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

# Regenerate BENCH_repair.json (whole-relation repair throughput) at the
# benchmark scale used by bench_test.go.
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_repair.json \
		-hosp-rows 20000 -hosp-rules 500 -uis-rows 8000 -uis-rules 100

# Short fuzzing pass over the hardened decoders and the HTTP surface.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ruleio/
	$(GO) test -fuzz=FuzzUnmarshalJSON -fuzztime=30s ./internal/ruleio/
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzReadColumnar -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzCSVChunk -fuzztime=30s ./internal/store/
	$(GO) test -run '^$$' -fuzz=FuzzHandleRepairCSV -fuzztime=30s ./internal/server/
	$(GO) test -run '^$$' -fuzz=FuzzHandleRepairJSON -fuzztime=30s ./internal/server/
	$(GO) test -run '^$$' -fuzz=FuzzTenantRouting -fuzztime=30s ./internal/server/

# Regenerate every figure/table of the paper's Section 7 at paper scale
# (minutes); results land in results/.
experiments:
	mkdir -p results
	$(GO) run ./cmd/experiments -csv results | tee results/experiments_output.txt

experiments-fast:
	$(GO) run ./cmd/experiments -fast

# Worked tracing example: chase-repair the hospital fixture and print each
# repaired tuple's rule applications (docs/OBSERVABILITY.md).
trace-demo:
	$(GO) run ./cmd/fixrepair -rules testdata/hosp/rules.dsl \
		-data testdata/hosp/dirty.csv -alg chase -trace

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
