package schema

import "testing"

func relAlgSample() *Relation {
	r := NewRelation(travel())
	r.Append(Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"})
	r.Append(Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"})
	r.Append(Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}) // dup
	r.Append(Tuple{"Mike", "Canada", "Toronto", "Toronto", "VLDB"})
	return r
}

func TestProject(t *testing.T) {
	r := relAlgSample()
	p, err := r.Project("country", "capital")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Arity() != 2 || p.Len() != 4 {
		t.Fatalf("projected = %d cols x %d rows", p.Schema().Arity(), p.Len())
	}
	if !p.Row(0).Equal(Tuple{"China", "Beijing"}) {
		t.Errorf("row 0 = %v", p.Row(0))
	}
	// Attribute order is as requested, not schema order.
	p2, err := r.Project("capital", "country")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Row(0).Equal(Tuple{"Beijing", "China"}) {
		t.Errorf("reordered row 0 = %v", p2.Row(0))
	}
	if _, err := r.Project(); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := r.Project("zzz"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSelect(t *testing.T) {
	r := relAlgSample()
	china := r.Select(func(t Tuple) bool { return t[1] == "China" })
	if china.Len() != 3 {
		t.Fatalf("selected %d rows", china.Len())
	}
	// Rows are copies, not aliases.
	china.Row(0)[0] = "X"
	if r.Row(0)[0] != "George" {
		t.Error("Select aliases rows")
	}
	none := r.Select(func(Tuple) bool { return false })
	if none.Len() != 0 {
		t.Error("empty selection non-empty")
	}
}

func TestDistinct(t *testing.T) {
	r := relAlgSample()
	d := r.Distinct()
	if d.Len() != 3 {
		t.Fatalf("distinct = %d rows", d.Len())
	}
	// First occurrence order preserved.
	if d.Row(1)[0] != "Ian" || d.Row(2)[0] != "Mike" {
		t.Errorf("order = %v", d.Rows())
	}
}

func TestSample(t *testing.T) {
	r := relAlgSample()
	s, err := r.Sample([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Row(0)[0] != "Mike" || s.Row(1)[0] != "George" {
		t.Errorf("sample = %v", s.Rows())
	}
	if _, err := r.Sample([]int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := r.Sample([]int{-1}); err == nil {
		t.Error("negative index accepted")
	}
}
