package loadgen

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistQuantileErrorBound pins the histogram's documented accuracy
// contract: the quantile estimate never undershoots the exact quantile and
// overshoots it by at most one bucket width — 1/64 (~1.6%) relative, plus
// 1ns of integer rounding.
func TestHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	// A latency-shaped mixture: a tight body around 2ms, a slower mode
	// around 40ms, and a long tail to 3s.
	vals := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		var v int64
		switch {
		case i%100 < 80:
			v = int64(2*time.Millisecond) + rng.Int63n(int64(time.Millisecond))
		case i%100 < 98:
			v = int64(40*time.Millisecond) + rng.Int63n(int64(20*time.Millisecond))
		default:
			v = rng.Int63n(int64(3 * time.Second))
		}
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1.0} {
		// The same rank definition Quantile uses.
		rank := int64(q*float64(len(vals)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > int64(len(vals)) {
			rank = int64(len(vals))
		}
		exact := vals[rank-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: estimate %d undershoots exact %d", q, got, exact)
		}
		if limit := exact + exact/64 + 1; got > limit {
			t.Errorf("q=%v: estimate %d exceeds bound %d (exact %d)", q, got, limit, exact)
		}
	}

	if h.Count() != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Max() != time.Duration(vals[len(vals)-1]) {
		t.Errorf("Max = %v, want %v", h.Max(), time.Duration(vals[len(vals)-1]))
	}
	if h.Min() != time.Duration(vals[0]) {
		t.Errorf("Min = %v, want %v", h.Min(), time.Duration(vals[0]))
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != time.Duration(sum) {
		t.Errorf("Sum = %v, want %v", h.Sum(), time.Duration(sum))
	}
}

// TestHistExactRegion: values below 128ns are recorded exactly.
func TestHistExactRegion(t *testing.T) {
	var h Hist
	for v := int64(0); v < 128; v++ {
		h.Record(time.Duration(v))
	}
	for i, v := range []int64{0, 63, 127} {
		_ = i
		q := (float64(v) + 1) / 128
		if got := int64(h.Quantile(q)); got != v {
			t.Errorf("Quantile(%v) = %d, want exact %d", q, got, v)
		}
	}
}

// TestHistBucketLayout: bucketIdx and bucketUpper agree — every value
// maps to a bucket whose upper edge is ≥ the value and within the 1/64
// relative-width contract.
func TestHistBucketLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(v int64) {
		t.Helper()
		i := bucketIdx(v)
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", i, up, v)
		}
		if v >= 128 && up-v > v/64+1 {
			t.Fatalf("value %d: upper %d exceeds width bound", v, up)
		}
		// Edges are consistent: the upper edge maps back to the same
		// bucket, and upper+1 to the next.
		if bucketIdx(up) != i {
			t.Fatalf("bucketIdx(upper(%d))=%d, want %d", v, bucketIdx(up), i)
		}
		if bucketIdx(up+1) != i+1 {
			t.Fatalf("bucketIdx(%d)=%d, want %d", up+1, bucketIdx(up+1), i+1)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		check(rng.Int63n(int64(100 * time.Second)))
	}
	check(int64(time.Hour))
}

// TestHistMergeAndConcurrency: concurrent recorders land every sample, and
// Merge folds shards into the same totals as a single histogram.
func TestHistMergeAndConcurrency(t *testing.T) {
	var whole Hist
	shards := make([]*Hist, 4)
	for i := range shards {
		shards[i] = &Hist{}
	}
	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < 10000; i++ {
				d := time.Duration(rng.Int63n(int64(time.Second)))
				shards[s].Record(d)
			}
		}(s)
	}
	wg.Wait()
	for _, s := range shards {
		whole.Merge(s)
	}
	if whole.Count() != 40000 {
		t.Fatalf("merged Count = %d, want 40000", whole.Count())
	}
	var wantSum time.Duration
	var wantMax time.Duration
	wantMin := time.Duration(1 << 62)
	for _, s := range shards {
		wantSum += s.Sum()
		if s.Max() > wantMax {
			wantMax = s.Max()
		}
		if s.Min() < wantMin {
			wantMin = s.Min()
		}
	}
	if whole.Sum() != wantSum || whole.Max() != wantMax || whole.Min() != wantMin {
		t.Errorf("merged sum/max/min = %v/%v/%v, want %v/%v/%v",
			whole.Sum(), whole.Max(), whole.Min(), wantSum, wantMax, wantMin)
	}
}
