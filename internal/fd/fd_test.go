package fd

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fixrule/internal/schema"
)

func cap3() *schema.Schema {
	return schema.New("Cap", "country", "capital", "city")
}

func relOf(rows ...[]string) *schema.Relation {
	rel := schema.NewRelation(cap3())
	for _, r := range rows {
		rel.Append(schema.Tuple(r))
	}
	return rel
}

func TestNewValidation(t *testing.T) {
	sch := cap3()
	cases := []struct {
		lhs, rhs []string
		wantErr  bool
	}{
		{[]string{"country"}, []string{"capital"}, false},
		{[]string{"country"}, []string{"capital", "city"}, false},
		{nil, []string{"capital"}, true},
		{[]string{"country"}, nil, true},
		{[]string{"nope"}, []string{"capital"}, true},
		{[]string{"country"}, []string{"nope"}, true},
		{[]string{"country", "country"}, []string{"capital"}, true},
		{[]string{"country"}, []string{"country"}, true},
	}
	for _, c := range cases {
		_, err := New(sch, c.lhs, c.rhs)
		if (err != nil) != c.wantErr {
			t.Errorf("New(%v, %v): err = %v, wantErr %v", c.lhs, c.rhs, err, c.wantErr)
		}
	}
}

func TestParse(t *testing.T) {
	sch := cap3()
	f, err := Parse(sch, " country ->  capital , city ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.LHS(), []string{"country"}) ||
		!reflect.DeepEqual(f.RHS(), []string{"capital", "city"}) {
		t.Errorf("parsed %v -> %v", f.LHS(), f.RHS())
	}
	if f.String() != "country -> capital, city" {
		t.Errorf("String = %q", f.String())
	}
	for _, bad := range []string{"country capital", "-> capital", "country ->", "zzz -> capital"} {
		if _, err := Parse(sch, bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestViolations(t *testing.T) {
	f := MustNew(cap3(), []string{"country"}, []string{"capital"})
	rel := relOf(
		[]string{"China", "Beijing", "Beijing"},
		[]string{"China", "Shanghai", "Hongkong"},
		[]string{"China", "Beijing", "Tokyo"},
		[]string{"Canada", "Ottawa", "Toronto"},
	)
	vs := Violations(rel, []*FD{f})
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.Attr != "capital" || v.FD != f {
		t.Errorf("violation = %+v", v)
	}
	if !reflect.DeepEqual(v.Rows(), []int{0, 1, 2}) {
		t.Errorf("rows = %v", v.Rows())
	}
	if v.MajorityValue() != "Beijing" {
		t.Errorf("majority = %q", v.MajorityValue())
	}
	if !reflect.DeepEqual(v.Groups["Beijing"], []int{0, 2}) {
		t.Errorf("groups = %v", v.Groups)
	}
}

func TestMajorityTieBreak(t *testing.T) {
	v := &Violation{Groups: map[string][]int{"b": {1}, "a": {0}}}
	if v.MajorityValue() != "a" {
		t.Errorf("tie break = %q, want lexicographic 'a'", v.MajorityValue())
	}
}

func TestSatisfies(t *testing.T) {
	f := MustNew(cap3(), []string{"country"}, []string{"capital"})
	clean := relOf(
		[]string{"China", "Beijing", "Beijing"},
		[]string{"China", "Beijing", "Shanghai"},
		[]string{"Canada", "Ottawa", "Toronto"},
	)
	if !Satisfies(clean, []*FD{f}) {
		t.Error("clean relation reported violating")
	}
	clean.Set(1, "capital", "Shanghai")
	if Satisfies(clean, []*FD{f}) {
		t.Error("dirty relation reported clean")
	}
}

func TestMultiAttributeLHSAndRHS(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	f := MustNew(sch, []string{"a", "b"}, []string{"c", "d"})
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"1", "2", "x", "y"})
	rel.Append(schema.Tuple{"1", "2", "x", "z"}) // violates on d only
	rel.Append(schema.Tuple{"1", "3", "q", "y"}) // different group
	vs := Violations(rel, []*FD{f})
	if len(vs) != 1 || vs[0].Attr != "d" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestViolationsNaiveAgreesRandomized(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	rng := rand.New(rand.NewSource(5))
	fds := []*FD{
		MustNew(sch, []string{"a"}, []string{"b"}),
		MustNew(sch, []string{"a", "b"}, []string{"c"}),
	}
	vals := []string{"0", "1", "2"}
	for trial := 0; trial < 50; trial++ {
		rel := schema.NewRelation(sch)
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			rel.Append(schema.Tuple{
				vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)],
			})
		}
		fast := Violations(rel, fds)
		slow := ViolationsNaive(rel, fds)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: %d fast vs %d slow violations", trial, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].LHSKey != slow[i].LHSKey || fast[i].Attr != slow[i].Attr ||
				!reflect.DeepEqual(fast[i].Groups, slow[i].Groups) {
				t.Fatalf("trial %d: violation %d differs:\n fast=%+v\n slow=%+v",
					trial, i, fast[i], slow[i])
			}
		}
	}
}

func TestLHSKeyUnambiguous(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	f := MustNew(sch, []string{"a", "b"}, []string{"c"})
	k1 := f.LHSKey(schema.Tuple{"x", "yz", "-"})
	k2 := f.LHSKey(schema.Tuple{"xy", "z", "-"})
	if k1 == k2 {
		t.Error("LHSKey collides across field boundaries")
	}
}

func TestCFDConstantViolations(t *testing.T) {
	sch := cap3()
	f := MustNew(sch, []string{"country"}, []string{"capital"})
	// (country -> capital, (country=China, capital=Beijing))
	c := MustNewCFD(f, map[string]string{"country": "China", "capital": "Beijing"})
	rel := relOf(
		[]string{"China", "Beijing", "x"},
		[]string{"China", "Shanghai", "x"}, // constant violation
		[]string{"Japan", "Tokyo", "x"},    // LHS pattern does not match
	)
	vs := CFDViolations(rel, []*CFD{c})
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	if !vs[0].Constant || vs[0].Rows[0] != 1 || vs[0].Attr != "capital" {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestCFDVariableViolations(t *testing.T) {
	sch := cap3()
	f := MustNew(sch, []string{"country"}, []string{"capital"})
	// Variable CFD scoped to country=China: capital must be functionally
	// determined within China rows only.
	c := MustNewCFD(f, map[string]string{"country": "China"})
	rel := relOf(
		[]string{"China", "Beijing", "x"},
		[]string{"China", "Shanghai", "x"},
		[]string{"Canada", "Ottawa", "x"},
		[]string{"Canada", "Toronto", "x"}, // would violate plain FD, but pattern excludes it
	)
	vs := CFDViolations(rel, []*CFD{c})
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].Constant || !reflect.DeepEqual(vs[0].Rows, []int{0, 1}) {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestCFDValidationAndString(t *testing.T) {
	sch := cap3()
	f := MustNew(sch, []string{"country"}, []string{"capital"})
	if _, err := NewCFD(f, map[string]string{"city": "x"}); err == nil {
		t.Error("pattern attribute outside X ∪ Y accepted")
	}
	if _, err := NewCFD(nil, nil); err == nil {
		t.Error("nil FD accepted")
	}
	c := MustNewCFD(f, map[string]string{"country": "China"})
	if got := c.String(); !strings.Contains(got, "country=China") {
		t.Errorf("String = %q", got)
	}
	if c.PatternValue("capital") != PatternWildcard {
		t.Error("missing pattern attr should default to wildcard")
	}
	if c.FD() != f {
		t.Error("FD accessor")
	}
}
