// Package padded is the atomicpad golden fixture. unpaddedAcc reproduces
// the exact pre-PR-3 false-sharing layout: adjacent per-worker
// accumulator slots in one shared slice with no cache-line padding, which
// ran the parallel repair path at 0.94x sequential.
package padded

import "unsafe"

// accData is a worker's payload, written on every processed row.
type accData struct {
	repaired int
	steps    int
	oov      int
	perRule  []int32
}

// unpaddedAcc is the PR-3 regression layout: workers indexing
// adjacent elements write the same cache line.
//
//fix:padded
type unpaddedAcc struct { // want `missing-pad`
	accData
}

// shortPadAcc pads, but not enough to separate adjacent payloads.
//
//fix:padded
type shortPadAcc struct { // want `pad-too-small`
	accData
	_ [8]byte
}

// paddedAcc is the fixed layout: a full trailing cache line.
//
//fix:padded
type paddedAcc struct {
	accData
	_ [64]byte
}

// tiledAcc pads to a multiple of the cache line instead; also accepted.
//
//fix:padded
type tiledAcc struct {
	accData
	_ [(128 - unsafe.Sizeof(accData{})%128) % 128]byte
}

// misaligned64 holds a 64-bit counter that lands on a 4-byte boundary
// under GOARCH=386 layout: sync/atomic access would fault there.
//
//fix:padded
type misaligned64 struct { // want `misaligned-64bit`
	ready uint32
	hits  uint64
	_     [64]byte
}

// aligned64 keeps the 64-bit counter first, the 32-bit documented fix.
//
//fix:padded
type aligned64 struct {
	hits  uint64
	ready uint32
	_     [64]byte
}

// notAStruct draws the misuse diagnostic.
//
//fix:padded
type notAStruct int // want `not-a-struct`

var _ = []any{
	unpaddedAcc{}, shortPadAcc{}, paddedAcc{}, tiledAcc{},
	misaligned64{}, aligned64{}, notAStruct(0),
}
