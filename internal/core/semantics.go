package core

import (
	"math/bits"
	"sort"

	"fixrule/internal/schema"
)

// Assured is the set A of assured attributes relative to a tuple
// (Section 3.2): attributes validated correct by earlier rule applications,
// which later rules may not change. The zero value is NOT part of the API;
// create with NewAssured or NewAssuredFor.
//
// Two representations back the set. When constructed with NewAssuredFor over
// a schema of arity ≤ 64, membership is a single uint64 bitmask keyed by
// attribute position — no per-tuple map allocation, which matters on the
// repair hot path where one Assured is created per tuple. Otherwise (no
// schema, or arity > 64) a lazily allocated name-keyed map is used; a clean
// tuple then allocates nothing at all.
type Assured struct {
	sch  *schema.Schema      // non-nil iff constructed with NewAssuredFor
	bits uint64              // bitmask mode: sch != nil && arity <= 64
	set  map[string]struct{} // map mode; nil until the first Add
}

// NewAssured returns an empty assured set (A = ∅) keyed by attribute name.
func NewAssured() *Assured {
	return &Assured{}
}

// NewAssuredFor returns an empty assured set over sch. For arity ≤ 64 the
// set is a position-indexed bitmask; beyond that it falls back to the map
// representation. All attributes later added must belong to sch.
func NewAssuredFor(sch *schema.Schema) *Assured {
	return &Assured{sch: sch}
}

// bitmask reports whether the uint64 fast path is active.
func (a *Assured) bitmask() bool { return a.sch != nil && a.sch.Arity() <= 64 }

// Has reports whether attribute a ∈ A.
func (a *Assured) Has(attr string) bool {
	if a.bitmask() {
		i := a.sch.Index(attr)
		return i >= 0 && a.bits&(1<<uint(i)) != 0
	}
	_, ok := a.set[attr]
	return ok
}

// HasIndex reports whether the attribute at schema position i is in A.
// It requires a schema-backed set (NewAssuredFor).
func (a *Assured) HasIndex(i int) bool {
	if a.bitmask() {
		return a.bits&(1<<uint(i)) != 0
	}
	if a.sch == nil {
		panic("core: Assured.HasIndex on a name-keyed set")
	}
	_, ok := a.set[a.sch.Attrs()[i]]
	return ok
}

// Add inserts attributes into A. On a schema-backed set every attribute must
// belong to the schema.
func (a *Assured) Add(attrs ...string) {
	if a.bitmask() {
		for _, x := range attrs {
			a.bits |= 1 << uint(a.sch.MustIndex(x))
		}
		return
	}
	if a.set == nil {
		a.set = make(map[string]struct{}, len(attrs))
	}
	for _, x := range attrs {
		a.set[x] = struct{}{}
	}
}

// AddIndex inserts the attribute at schema position i. It requires a
// schema-backed set (NewAssuredFor).
func (a *Assured) AddIndex(i int) {
	if a.bitmask() {
		a.bits |= 1 << uint(i)
		return
	}
	if a.sch == nil {
		panic("core: Assured.AddIndex on a name-keyed set")
	}
	a.Add(a.sch.Attrs()[i])
}

// Len returns |A|.
func (a *Assured) Len() int {
	if a.bitmask() {
		return bits.OnesCount64(a.bits)
	}
	return len(a.set)
}

// Attrs returns the assured attributes, sorted.
func (a *Assured) Attrs() []string {
	if a.bitmask() {
		out := make([]string, 0, bits.OnesCount64(a.bits))
		for i, name := range a.sch.Attrs() {
			if a.bits&(1<<uint(i)) != 0 {
				out = append(out, name)
			}
		}
		sort.Strings(out)
		return out
	}
	out := make([]string, 0, len(a.set))
	for x := range a.set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of A.
func (a *Assured) Clone() *Assured {
	c := &Assured{sch: a.sch, bits: a.bits}
	if a.set != nil {
		c.set = make(map[string]struct{}, len(a.set))
		for x := range a.set {
			c.set[x] = struct{}{}
		}
	}
	return c
}

// ProperlyApplies reports whether φ can be properly applied to t w.r.t. A
// (written t →(A,φ) t′ in the paper): t ⊢ φ and B ∉ A.
func ProperlyApplies(r *Rule, t schema.Tuple, a *Assured) bool {
	if a.sch != nil {
		return !a.HasIndex(r.targetIdx) && r.Matches(t)
	}
	return !a.Has(r.target) && r.Matches(t)
}

// Apply performs one proper application step: it updates t[B] := tp+[B] in
// place and extends A with X ∪ {B}. The caller must have checked
// ProperlyApplies; Apply panics otherwise, because applying a non-matching
// rule would corrupt the chase invariants.
func Apply(r *Rule, t schema.Tuple, a *Assured) {
	if !ProperlyApplies(r, t, a) {
		panic("core: Apply on a rule that does not properly apply")
	}
	t[r.targetIdx] = r.fact
	if a.sch != nil {
		for _, i := range r.evidenceIdx {
			a.AddIndex(i)
		}
		a.AddIndex(r.targetIdx)
		return
	}
	a.Add(r.evidenceAttrs...)
	a.Add(r.target)
}

// Step records one proper rule application in a fix sequence.
type Step struct {
	Rule *Rule
	Attr string // B, the repaired attribute
	From string // the negative-pattern value that was replaced
	To   string // the fact written
}

// Fix chases t with Σ from an empty assured set until a fixpoint is reached
// (Section 3.2): it repeatedly picks the first rule (in Σ order) that
// properly applies. The input tuple is not modified; the repaired tuple,
// the applied steps, and the final assured set are returned.
//
// Termination is guaranteed because every proper application strictly grows
// A, bounded by |R| (Section 4.1). When Σ is consistent the result is the
// unique fix regardless of application order (Church–Rosser).
//
// A worklist of still-live rules cuts the rescans: a rule that has applied,
// or whose target attribute is assured, can never properly apply again
// (A only grows), so it is dropped. The application sequence is unchanged —
// after each application the scan still restarts from the earliest live
// rule in Σ order.
func Fix(rules []*Rule, t schema.Tuple) (schema.Tuple, []Step, *Assured) {
	cur := t.Clone()
	var a *Assured
	if len(rules) > 0 {
		a = NewAssuredFor(rules[0].Schema())
	} else {
		a = NewAssured()
	}
	var steps []Step
	live := make([]*Rule, len(rules))
	copy(live, rules)
	for {
		applied := false
		kept := live[:0]
		for i, r := range live {
			if a.targetAssured(r) {
				continue // target assured: drop, it can never apply again
			}
			if !r.Matches(cur) {
				kept = append(kept, r)
				continue
			}
			from := cur[r.targetIdx]
			Apply(r, cur, a)
			steps = append(steps, Step{Rule: r, Attr: r.target, From: from, To: r.fact})
			// Restart from the earliest live rule, as the paper's chase does:
			// keep the not-yet-scanned suffix (minus this rule) live.
			kept = append(kept, live[i+1:]...)
			applied = true
			break
		}
		live = kept
		if !applied {
			return cur, steps, a
		}
	}
}

// targetAssured reports whether r's target attribute is assured, using the
// index fast path when the set is schema-backed.
func (a *Assured) targetAssured(r *Rule) bool {
	if a.sch != nil {
		return a.HasIndex(r.targetIdx)
	}
	return a.Has(r.target)
}

// Fixpoint is one terminal state of the chase: the fixed tuple together
// with the assured attributes accumulated along the way. Two application
// orders can reach the same tuple with different assured sets — a
// distinction that matters for consistency analysis (see the strict
// checker in internal/consistency).
type Fixpoint struct {
	Tuple   schema.Tuple
	Assured *Assured
}

// AllFixes explores every maximal application order of Σ on t and returns
// the set of distinct fixpoints, keyed and deduplicated by tuple value.
// It is the reference oracle behind tuple-enumeration consistency checking
// (isConsist_t) and the implication checker: t has a unique fix by Σ iff
// AllFixes returns a single tuple.
//
// The search is exponential in the number of applicable rules in the worst
// case; callers use it on the small models of Sections 4.3 and 5.2, where
// few rules can fire on any one tuple.
func AllFixes(rules []*Rule, t schema.Tuple) []schema.Tuple {
	seen := make(map[string]schema.Tuple)
	for _, fp := range AllFixpoints(rules, t) {
		seen[fp.Tuple.Key()] = fp.Tuple
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]schema.Tuple, 0, len(seen))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// AllFixpoints is AllFixes with full terminal states: fixpoints are
// deduplicated by (tuple, assured set), so two orders reaching the same
// tuple with different assured attributes yield two entries.
func AllFixpoints(rules []*Rule, t schema.Tuple) []Fixpoint {
	seen := make(map[string]Fixpoint)
	// visited memoizes (tuple, assured) states to avoid re-exploring
	// permutations that converge to the same intermediate state.
	visited := make(map[string]struct{})
	newAssured := NewAssured
	if len(rules) > 0 {
		sch := rules[0].Schema()
		newAssured = func() *Assured { return NewAssuredFor(sch) }
	}
	var rec func(cur schema.Tuple, a *Assured)
	rec = func(cur schema.Tuple, a *Assured) {
		stateKey := cur.Key() + "|" + keyOf(a)
		if _, ok := visited[stateKey]; ok {
			return
		}
		visited[stateKey] = struct{}{}
		fired := false
		for _, r := range rules {
			if !ProperlyApplies(r, cur, a) {
				continue
			}
			fired = true
			next := cur.Clone()
			na := a.Clone()
			Apply(r, next, na)
			rec(next, na)
		}
		if !fired {
			seen[stateKey] = Fixpoint{Tuple: cur, Assured: a}
		}
	}
	rec(t.Clone(), newAssured())

	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Fixpoint, 0, len(seen))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// HasUniqueFix reports whether t has a unique fix by Σ (Section 3.2).
func HasUniqueFix(rules []*Rule, t schema.Tuple) bool {
	return len(AllFixes(rules, t)) == 1
}

func keyOf(a *Assured) string {
	attrs := a.Attrs()
	out := ""
	for _, x := range attrs {
		out += x + ","
	}
	return out
}
