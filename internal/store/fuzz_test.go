package store

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"

	"fixrule/internal/schema"
)

// FuzzRead hardens the binary reader: arbitrary bytes must either decode
// into a relation that re-encodes losslessly, or fail with an error —
// never panic, never hang, never allocate unbounded memory.
func FuzzRead(f *testing.F) {
	var good bytes.Buffer
	if err := Write(&good, sampleRelation()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte("FRELv1\n\x02R\x01a\x01"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, rel); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rel2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rel2.Len() != rel.Len() || len(schema.Diff(rel, rel2)) != 0 {
			t.Fatal("binary round trip changed data")
		}
	})
}

// FuzzReadColumnar hardens the fcol chunk decoder the same way FuzzRead
// hardens the frel row decoder: arbitrary bytes must either decode into a
// relation that re-encodes losslessly, or fail — never panic, never hang,
// never allocate unbounded memory.
func FuzzReadColumnar(f *testing.F) {
	var good bytes.Buffer
	if err := WriteColumnar(&good, sampleRelation(), 2); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(colMagic))
	f.Add([]byte("FCOLv1\n\x01R\x01a\x02\x02\x01\x01x\x00\x00"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := ReadColumnar(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteColumnar(&out, rel, 3); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rel2, err := ReadColumnar(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rel2.Len() != rel.Len() || len(schema.Diff(rel, rel2)) != 0 {
			t.Fatal("columnar round trip changed data")
		}
	})
}

// FuzzCSVChunk cross-checks the chunked CSV parser against encoding/csv
// on arbitrary input: both must accept the same prefixes with the same
// records, or both must fail.
func FuzzCSVChunk(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("a,b\r\n\"x\n y\",\"q\"\"q\"\n,\n")
	f.Add("a,b\n\nx,\"\n\r\n\",oops")
	f.Add("\xEF\xBB\xBFa,b\n1,2\r")
	f.Add("a,b\nbare\"quote,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		const arity = 2
		ref := csv.NewReader(strings.NewReader(in))
		ref.FieldsPerRecord = arity
		var refRecs [][]string
		_, refErr := ref.Read() // header
		if refErr == nil {
			for {
				rec, err := ref.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					refErr = err
					break
				}
				refRecs = append(refRecs, rec)
			}
		}

		var gotRecs [][]string
		cr, _, gotErr := NewCSVChunkReader(strings.NewReader(in), arity)
		if gotErr == nil {
			var c ColChunk
			for {
				n, err := cr.ReadChunk(&c, 3)
				if err == io.EOF {
					break
				}
				if err != nil {
					gotErr = err
					break
				}
				for i := 0; i < n; i++ {
					gotRecs = append(gotRecs, []string{c.Value(i, 0), c.Value(i, 1)})
				}
			}
		}

		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("acceptance differs: ref %v, chunk %v", refErr, gotErr)
		}
		if len(refRecs) != len(gotRecs) {
			t.Fatalf("ref %d records, chunk %d (ref err %v)", len(refRecs), len(gotRecs), refErr)
		}
		for i := range refRecs {
			if refRecs[i][0] != gotRecs[i][0] || refRecs[i][1] != gotRecs[i][1] {
				t.Fatalf("record %d: ref %q, chunk %q", i, refRecs[i], gotRecs[i])
			}
		}

		// The raw chunk reader must agree cell for cell, and every row it
		// marks plain must hold exactly the row's canonical CSV rendering.
		var rawRecs [][]string
		rr, _, rawErr := NewCSVChunkReader(strings.NewReader(in), arity)
		if rawErr == nil {
			var rc RawChunk
			for {
				n, err := rr.ReadRawChunk(&rc, 3)
				if err == io.EOF {
					break
				}
				if err != nil {
					rawErr = err
					break
				}
				for i := 0; i < n; i++ {
					rawRecs = append(rawRecs, []string{string(rc.Cell(i, 0)), string(rc.Cell(i, 1))})
					var want []byte
					want = AppendCSVValueBytes(want, rc.Cell(i, 0))
					want = append(want, ',')
					want = AppendCSVValueBytes(want, rc.Cell(i, 1))
					want = append(want, '\n')
					s, e := rc.RowSpan(i)
					if rc.Plain[i] == 1 && !bytes.Equal(rc.Buf[s:e], want) {
						t.Fatalf("row %d marked plain but span %q != canonical %q", i, rc.Buf[s:e], want)
					}
					if rc.AllPlain && rc.Plain[i] != 1 {
						t.Fatalf("AllPlain chunk holds non-plain row %d", i)
					}
				}
			}
		}
		if (gotErr == nil) != (rawErr == nil) {
			t.Fatalf("raw acceptance differs: chunk %v, raw %v", gotErr, rawErr)
		}
		if len(gotRecs) != len(rawRecs) {
			t.Fatalf("chunk %d records, raw %d", len(gotRecs), len(rawRecs))
		}
		for i := range gotRecs {
			if gotRecs[i][0] != rawRecs[i][0] || gotRecs[i][1] != rawRecs[i][1] {
				t.Fatalf("record %d: chunk %q, raw %q", i, gotRecs[i], rawRecs[i])
			}
		}
	})
}
