// Package errcode guards the HTTP error surface: clients must only ever
// see registered stable error codes and reviewed messages, never raw
// error text that could leak server-internal detail (file paths, stack
// fragments, wrapped driver errors).
//
// In any package that imports net/http, the analyzer enforces:
//
//  1. Calls to a writeError-style helper (any function or method named
//     writeError whose last two parameters are code and message strings)
//     must pass a package-level string constant as the code — the
//     registered-code table of errors.go — not a literal or a computed
//     value.
//  2. The message argument must not carry error text: no (error).Error()
//     call, no error-typed operand formatted via fmt.Sprintf/Sprint, no
//     fmt.Errorf result. Sites where the error text is provably the
//     client's own input may acknowledge the audit with
//     `//fix:allow errcode: <reason>`.
//  3. http.Error and direct response-body writes (fmt.Fprint* or
//     io.WriteString to an http.ResponseWriter, w.Write) must not carry
//     error text either.
package errcode

import (
	"go/ast"
	"go/token"
	"go/types"

	"fixrule/internal/analysis"
)

// Analyzer is the errcode check.
var Analyzer = &analysis.Analyzer{
	Name:  "errcode",
	Doc:   "HTTP responses carry registered error codes only; raw error text must not reach a response body",
	Codes: []string{"error-text-in-response", "unregistered-code"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	if !importsNetHTTP(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkWriteError(pass, call)
			checkHTTPError(pass, call)
			checkResponseWrite(pass, call)
			return true
		})
	}
	return nil
}

func importsNetHTTP(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "net/http" {
			return true
		}
	}
	return false
}

// calleeNamed reports whether the call statically invokes a function or
// method with the given name.
func calleeNamed(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	return f != nil && f.Name() == name
}

// checkWriteError audits writeError(w, status, code, message) call sites.
func checkWriteError(pass *analysis.Pass, call *ast.CallExpr) {
	if !calleeNamed(pass, call, "writeError") || len(call.Args) < 4 {
		return
	}
	codeArg := call.Args[len(call.Args)-2]
	msgArg := call.Args[len(call.Args)-1]

	if !isRegisteredCode(pass, codeArg) {
		pass.Reportf(codeArg.Pos(), "unregistered-code",
			"error code must be a registered package-level constant (see errors.go), not an ad-hoc value")
	}
	if pos, ok := containsErrorText(pass.TypesInfo, msgArg); ok {
		pass.Reportf(pos, "error-text-in-response",
			"raw error text reaches the response body; map the failure to a registered code and a reviewed message")
	}
}

// checkHTTPError flags http.Error(w, err.Error(), ...) and any other
// error-derived message handed to the stdlib helper.
func checkHTTPError(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Name() != "Error" || f.Pkg() == nil || f.Pkg().Path() != "net/http" {
		return
	}
	if len(call.Args) >= 2 {
		if pos, ok := containsErrorText(pass.TypesInfo, call.Args[1]); ok {
			pass.Reportf(pos, "error-text-in-response",
				"raw error text reaches the response body via http.Error")
		}
	}
}

// checkResponseWrite flags error text written straight to an
// http.ResponseWriter: fmt.Fprint*(w, ... err ...), io.WriteString(w,
// err.Error()), w.Write([]byte(err.Error())).
func checkResponseWrite(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	f := analysis.CalleeFunc(info, call)
	if f == nil {
		return
	}
	writerFirstArg := false
	switch {
	case f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
		(f.Name() == "Fprintf" || f.Name() == "Fprint" || f.Name() == "Fprintln"):
		writerFirstArg = true
	case f.Pkg() != nil && f.Pkg().Path() == "io" && f.Name() == "WriteString":
		writerFirstArg = true
	case f.Name() == "Write" || f.Name() == "WriteString":
		// Method on a ResponseWriter-implementing receiver.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := info.TypeOf(sel.X); t != nil && isResponseWriter(pass, t) {
				for _, arg := range call.Args {
					if pos, ok := containsErrorText(info, arg); ok {
						pass.Reportf(pos, "error-text-in-response",
							"raw error text written to the HTTP response")
					}
				}
			}
		}
		return
	default:
		return
	}
	if !writerFirstArg || len(call.Args) < 2 {
		return
	}
	if t := info.TypeOf(call.Args[0]); t == nil || !isResponseWriter(pass, t) {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := info.TypeOf(arg); t != nil && analysis.IsErrorType(t) {
			pass.Reportf(arg.Pos(), "error-text-in-response",
				"error value formatted into the HTTP response")
			continue
		}
		if pos, ok := containsErrorText(info, arg); ok {
			pass.Reportf(pos, "error-text-in-response",
				"raw error text written to the HTTP response")
		}
	}
}

// isResponseWriter reports whether t is or implements
// net/http.ResponseWriter.
func isResponseWriter(pass *analysis.Pass, t types.Type) bool {
	if analysis.IsNamed(t, "net/http", "ResponseWriter") {
		return true
	}
	iface := responseWriterIface(pass.Pkg)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) ||
		types.Implements(types.NewPointer(t), iface)
}

func responseWriterIface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// isRegisteredCode reports whether the expression is an identifier (or
// selector) resolving to a package-level string constant — the registered
// code table.
func isRegisteredCode(pass *analysis.Pass, e ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	// Package-level: parent scope is the package scope.
	return c.Parent() == c.Pkg().Scope() && analysis.IsString(c.Type())
}

// containsErrorText scans an expression tree for error text escaping into
// a string: an Error() call on an error value, fmt.Errorf, or an
// error-typed operand handed to a fmt formatter.
func containsErrorText(info *types.Info, e ast.Expr) (pos token.Pos, okFound bool) {
	var found ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// err.Error()
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(call.Args) == 0 {
			if t := info.TypeOf(sel.X); t != nil && analysis.IsErrorType(t) {
				found = call
				return false
			}
		}
		f := analysis.CalleeFunc(info, call)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			if f.Name() == "Errorf" {
				found = call
				return false
			}
			if f.Name() == "Sprintf" || f.Name() == "Sprint" || f.Name() == "Sprintln" {
				for _, arg := range call.Args {
					if t := info.TypeOf(arg); t != nil && analysis.IsErrorType(t) {
						found = arg
						return false
					}
				}
			}
		}
		return true
	})
	if found == nil {
		return token.NoPos, false
	}
	return found.Pos(), true
}
