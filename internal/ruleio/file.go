package ruleio

import (
	"fmt"
	"os"
	"strings"

	"fixrule/internal/core"
)

// LoadFile reads a ruleset from a file, selecting the encoding by
// extension: *.json uses the JSON encoding, everything else the DSL.
func LoadFile(path string) (*core.Ruleset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		rs, err := UnmarshalJSON(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rs, nil
	}
	rs, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// SaveFile writes a ruleset to a file, selecting the encoding by extension
// as LoadFile does.
func SaveFile(path string, rs *core.Ruleset) error {
	var data []byte
	if strings.HasSuffix(path, ".json") {
		var err error
		data, err = MarshalJSON(rs)
		if err != nil {
			return err
		}
	} else {
		data = []byte(Format(rs))
	}
	return os.WriteFile(path, data, 0o644)
}
