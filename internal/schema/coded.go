package schema

// Codes is a dictionary-encoded relation body: a dense matrix of uint32
// codes, one row per tuple and one column per attribute, stored row-major
// in a single backing slice. It carries no dictionary itself — producers
// (the compiled repair engine) own the value↔code mapping; Codes is only
// the storage so that encoding a whole relation costs two allocations
// regardless of row count.
//
// Code 0 is conventionally reserved by producers for "not in vocabulary";
// a fresh Codes matrix is all zeros.
type Codes struct {
	arity int
	buf   []uint32
}

// NewCodes allocates an n × arity code matrix, zero-filled.
func NewCodes(n, arity int) *Codes {
	return &Codes{arity: arity, buf: make([]uint32, n*arity)}
}

// Reset re-shapes c to n × arity, reusing the backing slice when it has
// capacity. The contents are NOT cleared — callers that pool matrices must
// overwrite every cell they later read.
func (c *Codes) Reset(n, arity int) {
	c.arity = arity
	want := n * arity
	if cap(c.buf) < want {
		c.buf = make([]uint32, want)
		return
	}
	c.buf = c.buf[:want]
}

// Data returns the row-major backing slice: cell (i, a) is at i*Arity()+a.
func (c *Codes) Data() []uint32 { return c.buf }

// Len returns the number of rows.
func (c *Codes) Len() int {
	if c.arity == 0 {
		return 0
	}
	return len(c.buf) / c.arity
}

// Arity returns the number of columns.
func (c *Codes) Arity() int { return c.arity }

// Row returns the i-th coded row as a slice aliasing the backing store;
// writes through it update the matrix.
func (c *Codes) Row(i int) []uint32 {
	return c.buf[i*c.arity : (i+1)*c.arity : (i+1)*c.arity]
}

// FromRows returns a relation over s that adopts rows as its backing slice
// without copying; the caller hands over ownership. Builders that assemble
// rows themselves (e.g. copy-on-write repair output, where unchanged tuples
// are shared with the source relation) use this to skip the per-row append.
func FromRows(s *Schema, rows []Tuple) *Relation {
	return &Relation{schema: s, rows: rows}
}

// NewDenseRelation returns a relation over s with n pre-carved rows backed
// by one contiguous []string — two allocations for the whole relation,
// versus one per row when appending cloned tuples. The rows are zero-valued;
// callers fill them in place via Row.
func NewDenseRelation(s *Schema, n int) *Relation {
	arity := s.Arity()
	backing := make([]string, n*arity)
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple(backing[i*arity : (i+1)*arity : (i+1)*arity])
	}
	return &Relation{schema: s, rows: rows}
}
