package repair

import (
	"fmt"
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/schema"
)

// TestLinearCandidateRejectedByNegatives: a rule whose evidence becomes
// fully matched by a cascade but whose target is not a negative value must
// be checked once and discarded without applying.
func TestLinearCandidateRejectedByNegatives(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	rs := core.MustRuleset(
		// Fires first: sets b := "2".
		core.MustNew("first", sch, map[string]string{"a": "1"}, "b", []string{"9"}, "2"),
		// Evidence (b=2) completes after the cascade, but c is clean
		// ("ok" is not a negative) — must not fire.
		core.MustNew("second", sch, map[string]string{"b": "2"}, "c", []string{"bad"}, "good"),
	)
	r := NewRepairer(rs)
	got, steps := r.RepairTuple(schema.Tuple{"1", "9", "ok"}, Linear)
	if len(steps) != 1 || steps[0].Rule.Name() != "first" {
		t.Fatalf("steps = %v", steps)
	}
	if !got.Equal(schema.Tuple{"1", "2", "ok"}) {
		t.Errorf("got %v", got)
	}
}

// TestLinearCascadeEnablesRule: the inverse — the cascade completes the
// second rule's evidence AND its target is negative, so it fires.
func TestLinearCascadeEnablesRule(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	rs := core.MustRuleset(
		core.MustNew("first", sch, map[string]string{"a": "1"}, "b", []string{"9"}, "2"),
		core.MustNew("second", sch, map[string]string{"b": "2"}, "c", []string{"bad"}, "good"),
	)
	r := NewRepairer(rs)
	got, steps := r.RepairTuple(schema.Tuple{"1", "9", "bad"}, Linear)
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if !got.Equal(schema.Tuple{"1", "2", "good"}) {
		t.Errorf("got %v", got)
	}
	// The chase algorithm agrees.
	chased, _ := r.RepairTuple(schema.Tuple{"1", "9", "bad"}, Chase)
	if !chased.Equal(got) {
		t.Errorf("chase = %v", chased)
	}
}

// TestLinearMultiEvidencePartialMatch: a rule with two evidence attributes
// where only one matches initially must not fire, even though its counter
// is non-zero.
func TestLinearMultiEvidencePartialMatch(t *testing.T) {
	sch := schema.New("R", "a", "b", "c")
	rs := core.MustRuleset(
		core.MustNew("pair", sch, map[string]string{"a": "1", "b": "2"}, "c", []string{"bad"}, "good"),
	)
	r := NewRepairer(rs)
	got, steps := r.RepairTuple(schema.Tuple{"1", "X", "bad"}, Linear)
	if len(steps) != 0 || got[2] != "bad" {
		t.Fatalf("partial evidence fired: %v %v", got, steps)
	}
}

// TestLinearScratchReuseAcrossTuples: repairing many tuples through the
// same Repairer must not leak counter state between tuples (the pooled
// scratch is reset via the touched list).
func TestLinearScratchReuseAcrossTuples(t *testing.T) {
	sch := schema.New("R", "a", "b")
	rs := core.MustRuleset(
		core.MustNew("r1", sch, map[string]string{"a": "1"}, "b", []string{"bad"}, "good"),
	)
	r := NewRepairer(rs)
	// First tuple bumps r1's counter to full.
	if _, steps := r.RepairTuple(schema.Tuple{"1", "bad"}, Linear); len(steps) != 1 {
		t.Fatal("first tuple not repaired")
	}
	// Second tuple does NOT match the evidence; stale counters would make
	// the rule a candidate and (correctly) fail the verify — but a bug in
	// reset could also make candidates appear spuriously. Repeat many times
	// through the pool.
	for i := 0; i < 100; i++ {
		got, steps := r.RepairTuple(schema.Tuple{"2", "bad"}, Linear)
		if len(steps) != 0 || got[1] != "bad" {
			t.Fatalf("iteration %d: stale scratch fired a rule: %v", i, got)
		}
		got, steps = r.RepairTuple(schema.Tuple{"1", "bad"}, Linear)
		if len(steps) != 1 || got[1] != "good" {
			t.Fatalf("iteration %d: matching tuple not repaired", i)
		}
	}
}

// TestUnicodeValues: rules and tuples with non-ASCII values work end to
// end (values are opaque strings).
func TestUnicodeValues(t *testing.T) {
	sch := schema.New("R", "国家", "首都")
	rs := core.MustRuleset(
		core.MustNew("φ1", sch, map[string]string{"国家": "中国"},
			"首都", []string{"上海", "香港"}, "北京"),
	)
	r := NewRepairer(rs)
	got, steps := r.RepairTuple(schema.Tuple{"中国", "上海"}, Linear)
	if len(steps) != 1 || got[1] != "北京" {
		t.Errorf("unicode repair = %v (%d steps)", got, len(steps))
	}
}

// TestEmptyStringValues: the empty string is a legal constant everywhere.
func TestEmptyStringValues(t *testing.T) {
	sch := schema.New("R", "a", "b")
	rs := core.MustRuleset(
		core.MustNew("blank", sch, map[string]string{"a": ""}, "b", []string{""}, "filled"),
	)
	r := NewRepairer(rs)
	got, steps := r.RepairTuple(schema.Tuple{"", ""}, Linear)
	if len(steps) != 1 || got[1] != "filled" {
		t.Errorf("empty-string repair = %v", got)
	}
	got, steps = r.RepairTuple(schema.Tuple{"x", ""}, Linear)
	if len(steps) != 0 || got[1] != "" {
		t.Errorf("non-matching evidence fired: %v", got)
	}
}

// TestRepairerConcurrentUse: one Repairer serving many goroutines must
// produce correct results (the scratch pool is the shared state).
func TestRepairerConcurrentUse(t *testing.T) {
	r := NewRepairer(paperRuleset())
	dirty := schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}
	clean := schema.Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				if got, _ := r.RepairTuple(dirty, Linear); got[2] != "Beijing" || got[3] != "Shanghai" {
					done <- fmt.Errorf("dirty repair = %v", got)
					return
				}
				if got, steps := r.RepairTuple(clean, Linear); len(steps) != 0 {
					done <- fmt.Errorf("clean tuple repaired: %v", got)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
