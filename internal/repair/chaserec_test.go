package repair

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fixrule/internal/repairlog"
	"fixrule/internal/schema"
)

// TestChaseRecorderMatchesRepairlog: with full sampling and no cap, the
// recorder's Log() must be exactly the repairlog a batch repair derives
// from Result.Changed — the equivalence the /debug/traces property test
// builds on.
func TestChaseRecorderMatchesRepairlog(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := fig1Relation()
	for _, alg := range []Algorithm{Chase, Linear} {
		rec := NewChaseRecorder(-1, 1, 0)
		res := r.RepairRelationRecorded(rel, alg, rec)
		want := repairlog.FromResult(rel, res.Relation, res.Changed)
		got := rec.Log()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: recorder log = %+v, want %+v", alg, got, want)
		}
	}
}

// TestChaseRecorderStepContents checks one known cascade (Figure 8, tuple
// r2) in full: rule order, old→new values, evidence, and the assured-set
// evolution.
func TestChaseRecorderStepContents(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := fig1Relation()
	rec := NewChaseRecorder(-1, 1, 0)
	r.RepairRelationRecorded(rel, Linear, rec)
	tuples := rec.Tuples()
	if len(tuples) != 3 {
		t.Fatalf("recorded %d tuples, want 3 (rows 1..3)", len(tuples))
	}
	ian := tuples[0]
	if ian.Row != 1 || len(ian.Steps) != 2 {
		t.Fatalf("ian trace = %+v", ian)
	}
	s0, s1 := ian.Steps[0], ian.Steps[1]
	if s0.Rule != "phi1" || s0.Attr != "capital" || s0.From != "Shanghai" || s0.To != "Beijing" {
		t.Errorf("step 0 = %+v", s0)
	}
	if s1.Rule != "phi4" || s1.Attr != "city" || s1.From != "Hongkong" || s1.To != "Shanghai" {
		t.Errorf("step 1 = %+v", s1)
	}
	if len(s0.Evidence) != 1 || s0.Evidence[0] != `country="China"` {
		t.Errorf("step 0 evidence = %v", s0.Evidence)
	}
	if want := []string{"capital", "country"}; !reflect.DeepEqual(s0.Assured, want) {
		t.Errorf("step 0 assured = %v, want %v", s0.Assured, want)
	}
	// After φ4 the assured set has grown by φ4's evidence (capital, conf)
	// and target (city).
	if want := []string{"capital", "city", "conf", "country"}; !reflect.DeepEqual(s1.Assured, want) {
		t.Errorf("step 1 assured = %v, want %v", s1.Assured, want)
	}
	if r.RuleAt(s0.RuleIndex).Name() != "phi1" {
		t.Errorf("RuleIndex %d does not resolve to phi1", s0.RuleIndex)
	}
}

// skewedCSV builds a CSV with dirty tuples sprinkled deterministically, and
// returns the row numbers that should be repaired.
func skewedCSV(rows int) (string, []int) {
	var b strings.Builder
	cw := csv.NewWriter(&b)
	cw.Write([]string{"name", "country", "capital", "city", "conf"})
	var dirty []int
	for i := 0; i < rows; i++ {
		switch {
		case i%7 == 1:
			cw.Write([]string{fmt.Sprintf("p%d", i), "China", "Shanghai", "Hongkong", "ICDE"})
			dirty = append(dirty, i)
		case i%11 == 4:
			cw.Write([]string{fmt.Sprintf("p%d", i), "China", "Tokyo", "Tokyo", "ICDE"})
			dirty = append(dirty, i)
		default:
			cw.Write([]string{fmt.Sprintf("p%d", i), "China", "Beijing", "Beijing", "SIGMOD"})
		}
	}
	cw.Flush()
	return b.String(), dirty
}

// TestChaseRecorderStreamingRowsExact: streaming recorders must key traces
// by global input row at any worker count, and the recorded set must be
// identical (sequential, parallel, and batch all agree).
func TestChaseRecorderStreamingRowsExact(t *testing.T) {
	r := NewRepairer(paperRuleset())
	input, dirty := skewedCSV(1500)

	seqRec := NewChaseRecorder(-1, 1, 0)
	var seqOut bytes.Buffer
	if _, err := r.StreamCSVTraced(context.Background(), strings.NewReader(input), &seqOut, Linear, seqRec); err != nil {
		t.Fatal(err)
	}
	var rows []int
	for _, tt := range seqRec.Tuples() {
		rows = append(rows, tt.Row)
	}
	if !reflect.DeepEqual(rows, dirty) {
		t.Fatalf("sequential recorded rows = %v, want %v", rows, dirty)
	}

	for _, workers := range []int{2, 3, 8} {
		parRec := NewChaseRecorder(-1, 1, 0)
		var parOut bytes.Buffer
		opts := ParallelOptions{Workers: workers, ChunkRows: 64, Recorder: parRec}
		if _, err := r.StreamCSVParallelOpts(context.Background(), strings.NewReader(input), &parOut, Linear, opts); err != nil {
			t.Fatal(err)
		}
		if parOut.String() != seqOut.String() {
			t.Fatalf("workers=%d: output differs from sequential", workers)
		}
		if !reflect.DeepEqual(parRec.Tuples(), seqRec.Tuples()) {
			t.Fatalf("workers=%d: recorded traces differ from sequential", workers)
		}
	}
}

// TestStreamLogRevertRoundTrip: the streaming path's repair log (recorder
// with full sampling) must revert the streamed output back to the
// byte-identical original — the dependability property -log promises.
func TestStreamLogRevertRoundTrip(t *testing.T) {
	r := NewRepairer(paperRuleset())
	input, _ := skewedCSV(700)
	for _, workers := range []int{1, 4} {
		rec := NewChaseRecorder(-1, 1, 0)
		var out bytes.Buffer
		var err error
		if workers > 1 {
			_, err = r.StreamCSVParallelOpts(context.Background(), strings.NewReader(input), &out,
				Linear, ParallelOptions{Workers: workers, Recorder: rec})
		} else {
			_, err = r.StreamCSVTraced(context.Background(), strings.NewReader(input), &out, Linear, rec)
		}
		if err != nil {
			t.Fatal(err)
		}
		if out.String() == input {
			t.Fatal("fixture must actually change under repair")
		}
		repaired, err := readCSVRelation(t, out.String())
		if err != nil {
			t.Fatal(err)
		}
		if err := repairlog.Revert(repaired, rec.Log()); err != nil {
			t.Fatalf("workers=%d: revert: %v", workers, err)
		}
		var restored bytes.Buffer
		writeCSVRelation(t, &restored, repaired)
		if restored.String() != input {
			t.Fatalf("workers=%d: reverted stream output is not byte-identical to the input", workers)
		}
	}
}

func readCSVRelation(t *testing.T, s string) (*schema.Relation, error) {
	t.Helper()
	cr := csv.NewReader(strings.NewReader(s))
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	rel := schema.NewRelation(travel())
	for _, rec := range recs[1:] {
		rel.Append(schema.Tuple(rec))
	}
	return rel, nil
}

func writeCSVRelation(t *testing.T, w *bytes.Buffer, rel *schema.Relation) {
	t.Helper()
	cw := csv.NewWriter(w)
	cw.Write(rel.Schema().Attrs())
	for i := 0; i < rel.Len(); i++ {
		cw.Write([]string(rel.Row(i)))
	}
	cw.Flush()
}

// TestChaseRecorderSamplingDeterministic: the per-row decision is a pure
// function of (seed, row) — reruns and worker counts cannot change which
// tuples are recorded — and different seeds pick different subsets.
func TestChaseRecorderSamplingDeterministic(t *testing.T) {
	r := NewRepairer(paperRuleset())
	input, dirty := skewedCSV(1500)
	runRows := func(seed uint64, workers int) []int {
		rec := NewChaseRecorder(-1, 0.4, seed)
		var out bytes.Buffer
		var err error
		if workers > 1 {
			_, err = r.StreamCSVParallelOpts(context.Background(), strings.NewReader(input), &out,
				Linear, ParallelOptions{Workers: workers, Recorder: rec})
		} else {
			_, err = r.StreamCSVTraced(context.Background(), strings.NewReader(input), &out, Linear, rec)
		}
		if err != nil {
			t.Fatal(err)
		}
		rows := []int{}
		for _, tt := range rec.Tuples() {
			rows = append(rows, tt.Row)
		}
		return rows
	}
	a, b, par := runRows(42, 1), runRows(42, 1), runRows(42, 4)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, par) {
		t.Fatal("sampling must be deterministic across runs and worker counts")
	}
	if len(a) == 0 || len(a) >= len(dirty) {
		t.Fatalf("rate 0.4 should record a strict subset: %d of %d", len(a), len(dirty))
	}
	if reflect.DeepEqual(a, runRows(43, 1)) {
		t.Fatal("different seeds should sample different rows")
	}
	if got := runRows(42, 1); len(got) == 0 {
		t.Fatal("sanity")
	}
	if rows := func() []int {
		rec := NewChaseRecorder(-1, 0, 0)
		var out bytes.Buffer
		if _, err := r.StreamCSVTraced(context.Background(), strings.NewReader(input), &out, Linear, rec); err != nil {
			t.Fatal(err)
		}
		var rr []int
		for _, tt := range rec.Tuples() {
			rr = append(rr, tt.Row)
		}
		return rr
	}(); len(rows) != 0 {
		t.Fatal("rate 0 must record nothing")
	}
}

// TestChaseRecorderCap: the tuple cap bounds memory and reports drops.
func TestChaseRecorderCap(t *testing.T) {
	r := NewRepairer(paperRuleset())
	input, dirty := skewedCSV(300)
	rec := NewChaseRecorder(2, 1, 0)
	var out bytes.Buffer
	if _, err := r.StreamCSVTraced(context.Background(), strings.NewReader(input), &out, Linear, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 2 {
		t.Fatalf("recorded %d tuples, want cap 2", rec.Len())
	}
	if want := len(dirty) - 2; rec.DroppedTuples() != want {
		t.Fatalf("dropped = %d, want %d", rec.DroppedTuples(), want)
	}
	got := rec.Tuples()
	if got[0].Row != dirty[0] || got[1].Row != dirty[1] {
		t.Fatalf("cap must keep the first tuples seen, got rows %d,%d", got[0].Row, got[1].Row)
	}
}

// TestChaseRecorderDroppedBounded: once the tuple cap is hit, the drop
// accounting itself must stay bounded — the exact distinct-row set stops
// growing at droppedSetMax and later drops fall into an overflow counter,
// so a capped recorder on a huge stream is O(cap), not O(changed rows).
func TestChaseRecorderDroppedBounded(t *testing.T) {
	rule := NewRepairer(paperRuleset()).rules[0]
	rec := NewChaseRecorder(1, 1, 0)
	rec.record(0, 0, rule, "x") // fills the cap
	const extra = 100
	for row := 1; row <= droppedSetMax+extra; row++ {
		// Two steps per row: inside the set duplicates are deduplicated;
		// past it each step counts, so the total is an upper bound.
		rec.record(row, 0, rule, "x")
		rec.record(row, 0, rule, "x")
	}
	if got := len(rec.dropped); got != droppedSetMax {
		t.Fatalf("dropped set grew to %d, want bound %d", got, droppedSetMax)
	}
	if got := rec.DroppedTuples(); got < droppedSetMax+extra {
		t.Fatalf("DroppedTuples = %d, want >= %d distinct drops", got, droppedSetMax+extra)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorded %d tuples, want cap 1", rec.Len())
	}
}

// TestRecorderDisabledZeroAlloc is the benchmark guard for the tentpole's
// core constraint: with a nil recorder the streaming repair loop (encode +
// per-attr OOV accounting + coded chase + write-back) allocates nothing.
func TestRecorderDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	r := NewRepairer(paperRuleset())
	dirty := schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}
	tup := dirty.Clone()
	stats := r.newStreamStats()
	sc := r.getScratch()
	defer r.putScratch(sc)
	for _, alg := range []Algorithm{Chase, Linear} {
		// Warm: populates the PerRule map keys outside the measured runs.
		copy(tup, dirty)
		r.repairInPlace(tup, alg, sc, stats, nil)
		allocs := testing.AllocsPerRun(100, func() {
			copy(tup, dirty)
			r.repairInPlace(tup, alg, sc, stats, nil)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per repairInPlace with recorder disabled, want 0", alg, allocs)
		}
	}
}

// TestRepairRelationParallelRecordedMatchesSequential: batch parallel
// recording agrees with sequential on a relation large enough to spread
// over many chunks.
func TestRepairRelationParallelRecordedMatchesSequential(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := schema.NewRelation(travel())
	for i := 0; i < 2000; i++ {
		switch {
		case i%5 == 3:
			rel.Append(schema.Tuple{fmt.Sprintf("p%d", i), "China", "Shanghai", "Hongkong", "ICDE"})
		case i%13 == 7:
			rel.Append(schema.Tuple{fmt.Sprintf("p%d", i), "Canada", "Toronto", "Toronto", "VLDB"})
		default:
			rel.Append(schema.Tuple{fmt.Sprintf("p%d", i), "China", "Beijing", "Beijing", "SIGMOD"})
		}
	}
	seqRec := NewChaseRecorder(-1, 1, 9)
	seqRes := r.RepairRelationRecorded(rel, Linear, seqRec)
	parRec := NewChaseRecorder(-1, 1, 9)
	parRes := r.RepairRelationParallelRecorded(rel, Linear, 4, parRec)
	if !reflect.DeepEqual(seqRec.Tuples(), parRec.Tuples()) {
		t.Fatal("parallel recorded traces differ from sequential")
	}
	if !reflect.DeepEqual(seqRes.OOVByAttr, parRes.OOVByAttr) {
		t.Fatalf("OOVByAttr: seq %v != par %v", seqRes.OOVByAttr, parRes.OOVByAttr)
	}
}

// TestOOVByAttrAccounting: the per-attribute OOV breakdown sums to OOV and
// names the right attributes on all three paths (batch, stream, parallel
// stream).
func TestOOVByAttrAccounting(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := schema.NewRelation(travel())
	// "name" has no dictionary (never mentioned by Σ) so it never counts;
	// "Atlantis"/"Mars" are out of every vocabulary.
	rel.Append(schema.Tuple{"A", "Atlantis", "Beijing", "Beijing", "SIGMOD"})
	rel.Append(schema.Tuple{"B", "China", "Mars", "Beijing", "SIGMOD"})
	rel.Append(schema.Tuple{"C", "Atlantis", "Mars", "Beijing", "SIGMOD"})
	res := r.RepairRelation(rel, Linear)
	// city=Beijing and conf=SIGMOD are outside Σ's per-attribute
	// vocabularies too — OOV is about evidence capacity, not correctness.
	want := map[string]int{"country": 2, "capital": 2, "city": 3, "conf": 3}
	if !reflect.DeepEqual(res.OOVByAttr, want) {
		t.Fatalf("batch OOVByAttr = %v, want %v", res.OOVByAttr, want)
	}
	sum := 0
	for _, n := range res.OOVByAttr {
		sum += n
	}
	if sum != res.OOV {
		t.Fatalf("OOVByAttr sums to %d, OOV = %d", sum, res.OOV)
	}

	var b bytes.Buffer
	writeCSVRelation(t, &b, rel)
	input := b.String()
	var out bytes.Buffer
	stats, err := r.StreamCSV(strings.NewReader(input), &out, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats.OOVByAttr, want) {
		t.Fatalf("stream OOVByAttr = %v, want %v", stats.OOVByAttr, want)
	}
	out.Reset()
	pstats, err := r.StreamCSVParallel(context.Background(), strings.NewReader(input), &out, Linear, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pstats.OOVByAttr, want) {
		t.Fatalf("parallel stream OOVByAttr = %v, want %v", pstats.OOVByAttr, want)
	}
}
