// Package hotpathalloc statically pins the engine's 0 allocs/op
// guarantee: functions annotated //fix:hotpath — and every function in
// the same package they statically call — must not contain allocating
// constructs. bench_test.go asserts 0 allocs/op at runtime, after a
// regression ships; this analyzer rejects the regression at vet time.
//
// Flagged constructs:
//
//   - string ↔ []byte / []rune conversions (copy + allocate)
//   - string concatenation with +
//   - any call into package fmt (formatting allocates by design)
//   - calls passing a non-pointer concrete value to an interface
//     parameter (boxing escapes to the heap)
//   - make and new (fresh heap objects)
//   - taking the address of a composite literal
//   - append to a slice declared in the hot function without capacity
//     (appending to pooled scratch — a parameter, a struct field, or a
//     re-slice like buf[:0] — is the engine's amortised-zero idiom and
//     is allowed)
//   - function literals that capture enclosing variables (the closure
//     header allocates)
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"fixrule/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //fix:hotpath functions and their intra-package callees",
	Codes: []string{
		"fmt-call", "string-conversion", "string-concat", "make", "new",
		"composite-lit-addr", "interface-boxing", "closure-capture",
		"append-no-prealloc",
	},
	Run: run,
}

const directive = "fix:hotpath"

// funcInfo pairs a package function's object with its syntax.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func run(pass *analysis.Pass) error {
	// Index every declared function in the package.
	funcs := map[*types.Func]*funcInfo{}
	var annotated []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = &funcInfo{decl: fd, obj: obj}
			if analysis.HasDirective(fd.Doc, directive) {
				annotated = append(annotated, obj)
			}
		}
	}
	if len(annotated) == 0 {
		return nil
	}

	// Propagate hotness over the intra-package static call graph: a
	// //fix:hotpath function's callees inherit the constraint, because an
	// allocation moved into a helper is still on the hot path.
	hot := map[*types.Func]string{} // callee -> annotation root name
	var mark func(obj *types.Func, root string)
	mark = func(obj *types.Func, root string) {
		if _, seen := hot[obj]; seen {
			return
		}
		hot[obj] = root
		fi := funcs[obj]
		if fi == nil {
			return
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, declared := funcs[callee]; declared {
				mark(callee, root)
			}
			return true
		})
	}
	for _, obj := range annotated {
		mark(obj, obj.Name())
	}

	for obj, root := range hot {
		fi := funcs[obj]
		if fi == nil {
			continue
		}
		checkFunc(pass, fi, root)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fi *funcInfo, root string) {
	info := pass.TypesInfo
	body := fi.decl.Body
	where := "" // suffix naming the annotation root for propagated callees
	if fi.obj.Name() != root {
		where = " (on the hot path of " + root + ")"
	}

	// Slices provably backed by pre-existing or pre-sized storage:
	// parameters, fields, and locals initialised from a re-slice or a
	// 3-arg make. Everything else appended to is flagged.
	prealloc := preallocatedSlices(info, fi.decl)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, where, prealloc)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n.X); t != nil && analysis.IsString(t) {
					pass.Reportf(n.OpPos, "string-concat",
						"string concatenation allocates on a //fix:hotpath function%s", where)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "composite-lit-addr",
						"&composite literal allocates on a //fix:hotpath function%s", where)
				}
			}
		case *ast.FuncLit:
			if captures(info, n, fi.decl) {
				pass.Reportf(n.Pos(), "closure-capture",
					"capturing closure allocates on a //fix:hotpath function%s", where)
			}
			return false // the literal runs elsewhere; don't double-report its body
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, where string, prealloc map[types.Object]bool) {
	info := pass.TypesInfo

	// Type conversions: string <-> []byte/[]rune copy their operand.
	if target, ok := analysis.IsConversion(info, call); ok {
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case analysis.IsString(target) && analysis.IsByteOrRuneSlice(src),
			analysis.IsByteOrRuneSlice(target) && analysis.IsString(src):
			pass.Reportf(call.Pos(), "string-conversion",
				"string/[]byte conversion allocates on a //fix:hotpath function%s", where)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make",
					"make allocates on a //fix:hotpath function%s", where)
			case "new":
				pass.Reportf(call.Pos(), "new",
					"new allocates on a //fix:hotpath function%s", where)
			case "append":
				if !appendTargetPreallocated(info, call, prealloc) {
					pass.Reportf(call.Pos(), "append-no-prealloc",
						"append to a slice with no preallocated capacity on a //fix:hotpath function%s", where)
				}
			}
			return
		}
	}

	callee := analysis.CalleeFunc(info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt-call",
			"fmt.%s allocates on a //fix:hotpath function%s", callee.Name(), where)
		return
	}

	// Interface boxing: a non-pointer concrete argument bound to an
	// interface parameter escapes. Pointers and interfaces fit the
	// interface word without allocating.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "interface-boxing",
			"non-pointer value boxed into interface argument allocates on a //fix:hotpath function%s", where)
	}
}

// captures reports whether the function literal references a variable
// declared in the enclosing function but outside the literal — the case
// where the compiler materialises a closure header on the heap.
func captures(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		declaredInEncl := v.Pos() >= encl.Pos() && v.Pos() < encl.End()
		declaredInLit := v.Pos() >= lit.Pos() && v.Pos() < lit.End()
		if declaredInEncl && !declaredInLit {
			found = true
		}
		return !found
	})
	return found
}

// preallocatedSlices collects slice-typed objects whose backing provably
// pre-exists the function: parameters, and locals whose initialiser is a
// re-slice expression (x[:0]) or a capacity-carrying make.
func preallocatedSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	ok := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					ok[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				ok[obj] = true
			case *ast.CallExpr:
				if bid, isB := ast.Unparen(rhs.Fun).(*ast.Ident); isB {
					if b, isBuiltin := info.Uses[bid].(*types.Builtin); isBuiltin &&
						b.Name() == "make" && len(rhs.Args) == 3 {
						ok[obj] = true
					}
				}
			}
		}
		return true
	})
	return ok
}

// appendTargetPreallocated reports whether the first append argument is
// backed by pre-existing storage: a field or element of a longer-lived
// value (selector/index base), or a local known to be preallocated.
func appendTargetPreallocated(info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return true
	}
	switch target := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := info.Uses[target]
		if obj == nil {
			obj = info.Defs[target]
		}
		return obj != nil && prealloc[obj]
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		// Scratch fields (sc.touched), pooled rows (chunk.rows[:0]) — the
		// engine's reuse idiom: backing pre-exists, growth amortises to
		// zero in steady state.
		return true
	}
	return false
}
