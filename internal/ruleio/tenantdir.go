package ruleio

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"fixrule/internal/core"
)

// TenantDirLoader builds a per-tenant ruleset loader over a directory of
// rule files: tenant "acme" loads <dir>/acme.dsl, falling back to
// <dir>/acme.json. The returned loader is what internal/server's
// TenantOptions.Loader expects — it reports unknown tenants with an error
// wrapping fs.ErrNotExist (the server maps that to 404), and it re-reads
// the file on every call, so a per-tenant reload picks up edits without
// restarting.
//
// The loader re-validates the tenant name with the same alphabet the
// server enforces ([a-z0-9][a-z0-9_-]*, max 64). The server never passes
// anything else, but a loader that touches the file system must not trust
// its caller for path safety — defense in depth against a future caller
// wiring it up without the HTTP-layer validation.
func TenantDirLoader(dir string) func(tenant string) (*core.Ruleset, error) {
	return func(tenant string) (*core.Ruleset, error) {
		if !safeTenantName(tenant) {
			return nil, fmt.Errorf("tenant %q: %w", tenant, fs.ErrNotExist)
		}
		for _, ext := range []string{".dsl", ".json"} {
			path := filepath.Join(dir, tenant+ext)
			if _, err := os.Stat(path); err == nil {
				return LoadFile(path)
			}
		}
		return nil, fmt.Errorf("tenant %q has no rule file under %s: %w",
			tenant, dir, fs.ErrNotExist)
	}
}

// safeTenantName mirrors the server's tenant-ID alphabet: 1–64 chars of
// [a-z0-9_-], first char alphanumeric. Everything that could traverse or
// alias a path ('/', '.', '\', upper case) is outside the alphabet.
func safeTenantName(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}
