// Command fixvet is the repo's static-analysis driver: it runs the nine
// engine-invariant analyzers (internal/analysis/...) over the given
// packages and reports findings, the compile-time counterpart of the
// paper's static Σ checks in cmd/rulecheck.
//
// Usage:
//
//	fixvet [-json] [packages...]
//
// With no packages, ./... is analysed. The exit status is 0 when every
// check passes, 1 when any finding survives (findings can be acknowledged
// in source with `//fix:allow <analyzer>: <reason>`), 2 on usage or load
// errors.
//
// Analyzers:
//
//	hotpathalloc   //fix:hotpath functions (and intra-package callees) must not allocate
//	atomicpad      //fix:padded structs must be cache-line padded and 32-bit atomic-safe
//	ctxpoll        unbounded loops in context-carrying functions must poll the context
//	errcode        HTTP responses carry registered error codes, never raw error text
//	detrange       bare map iteration must not feed user-visible ordered output
//	goleak         every goroutine launch must show a join (WaitGroup, done-channel, ctx)
//	lockscope      mutexes must not be held across blocking ops; branches must balance
//	sharedcapture  goroutine-captured variables must not be written racily on both sides
//	suppressaudit  //fix:allow directives that no longer suppress anything are errors
//
// -json emits the shared diagnostic schema of internal/analysis/diag —
// the same shape cmd/rulecheck -format json produces — so rule-level and
// Go-level findings flow into one consumer. Output is sorted by
// (file, line, code) in both modes, so runs diff cleanly. -codes lists
// every registered diagnostic code with its analyzer and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fixrule/internal/analysis"
	"fixrule/internal/analysis/atomicpad"
	"fixrule/internal/analysis/ctxpoll"
	"fixrule/internal/analysis/detrange"
	"fixrule/internal/analysis/diag"
	"fixrule/internal/analysis/errcode"
	"fixrule/internal/analysis/goleak"
	"fixrule/internal/analysis/hotpathalloc"
	"fixrule/internal/analysis/lockscope"
	"fixrule/internal/analysis/sharedcapture"
	"fixrule/internal/analysis/suppressaudit"
)

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	atomicpad.Analyzer,
	ctxpoll.Analyzer,
	errcode.Analyzer,
	detrange.Analyzer,
	goleak.Analyzer,
	lockscope.Analyzer,
	sharedcapture.Analyzer,
	suppressaudit.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (internal/analysis/diag schema)")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	codes := flag.Bool("codes", false, "list every registered diagnostic code with its analyzer and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fixvet [-json] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *codes {
		// Include the framework's own codes (bad-suppression,
		// unknown-analyzer): consumers key on those too.
		for _, a := range append([]*analysis.Analyzer{analysis.Framework}, analyzers...) {
			for _, c := range a.Codes {
				fmt.Printf("%-14s %s\n", a.Name, c)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	code, err := run(patterns, *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(patterns []string, jsonOut bool) (int, error) {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		return 0, err
	}

	cwd, _ := os.Getwd()
	var found []diag.Diagnostic
	for _, pkg := range pkgs {
		results, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return 0, err
		}
		for _, res := range results {
			for _, d := range res.Diags {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if cwd != "" {
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
						file = rel
					}
				}
				found = append(found, diag.Diagnostic{
					File:     file,
					Line:     pos.Line,
					Col:      pos.Column,
					Severity: diag.SeverityError,
					Analyzer: res.Analyzer.Name,
					Code:     d.Code,
					Message:  d.Message,
				})
			}
		}
	}

	// Deterministic output order regardless of package load order, so
	// consecutive runs (and the CI artifact) diff cleanly.
	sort.Slice(found, func(i, j int) bool {
		if found[i].File != found[j].File {
			return found[i].File < found[j].File
		}
		if found[i].Line != found[j].Line {
			return found[i].Line < found[j].Line
		}
		return found[i].Code < found[j].Code
	})

	if jsonOut {
		if err := diag.Write(os.Stdout, found); err != nil {
			return 0, err
		}
	} else {
		for _, d := range found {
			fmt.Printf("%s:%d:%d: %s[%s]: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Code, d.Message)
		}
	}
	if len(found) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "fixvet: %d finding(s)\n", len(found))
		}
		return 1, nil
	}
	return 0, nil
}
