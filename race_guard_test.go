//go:build race

package fixrule

// raceEnabled reports whether this test binary was built with -race, whose
// instrumentation skews timing comparisons and allocation counts; tests
// asserting either skip themselves when it is set.
const raceEnabled = true
