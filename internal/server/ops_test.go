package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
)

var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// newOpsServer builds a *Server (not just an httptest wrapper) so tests
// can reach the semaphore and registry.
func newOpsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sch := schema.New("Travel", "name", "country", "capital", "city", "conf")
	rs := core.MustRuleset(
		core.MustNew("phi1", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai", "Hongkong"}, "Beijing"),
		core.MustNew("phi4", sch,
			map[string]string{"capital": "Beijing", "conf": "ICDE"},
			"city", []string{"Hongkong"}, "Shanghai"),
	)
	rep, err := repair.NewRepairerChecked(rs)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger
	}
	s := NewWithConfig(rep, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

// decodeEnvelope asserts the response is a JSON error envelope and
// returns its stable code.
func decodeEnvelope(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope incomplete: %+v", env)
	}
	return env.Error.Code
}

// TestErrorEnvelopeShape: every failure mode answers with the JSON
// envelope and its documented stable code.
func TestErrorEnvelopeShape(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", "POST", "/repair", "not json", 400, codeBadJSON},
		{"arity", "POST", "/repair", `{"tuples": [["short"]]}`, 400, codeArityMismatch},
		{"algorithm", "POST", "/repair", `{"tuples": [], "algorithm": "quantum"}`, 400, codeBadAlgorithm},
		{"method", "GET", "/repair", "", 405, codeMethodNotAllowed},
		{"format", "GET", "/rules?format=xml", "", 400, codeBadFormat},
		{"csv header", "POST", "/repair/csv", "a,b\n1,2\n", 400, codeBadStream},
		{"csv algorithm", "POST", "/repair/csv?algorithm=quantum", "", 400, codeBadAlgorithm},
		{"explain bad json", "POST", "/explain", "garbage", 400, codeBadJSON},
		{"reload disabled", "POST", "/reload", "", 501, codeReloadDisabled},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, _ := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != c.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.wantStatus)
			}
			if code := decodeEnvelope(t, resp); code != c.wantCode {
				t.Errorf("code = %q, want %q", code, c.wantCode)
			}
		})
	}
}

// TestVersionHeaders: every response names the ruleset that served it.
func TestVersionHeaders(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := resp.Header.Get(VersionHeader); v != "1" {
		t.Errorf("%s = %q, want 1", VersionHeader, v)
	}
	if h := resp.Header.Get(HashHeader); len(h) != 12 {
		t.Errorf("%s = %q, want 12 hex digits", HashHeader, h)
	}
}

// TestBodyTooLarge: an over-limit body is refused with 413 and the
// body_too_large code on both repair endpoints.
func TestBodyTooLarge(t *testing.T) {
	_, srv := newOpsServer(t, Config{MaxBodyBytes: 64})
	big := `{"tuples": [["` + strings.Repeat("x", 200) + `","a","b","c","d"]]}`
	resp, err := http.Post(srv.URL+"/repair", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/repair status = %d, want 413", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != codeBodyTooLarge {
		t.Errorf("code = %q", code)
	}
	csvBody := "name,country,capital,city,conf\n" + strings.Repeat("a,b,c,d,e\n", 50)
	resp, err = http.Post(srv.URL+"/repair/csv", "text/csv", strings.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), codeBodyTooLarge) {
		t.Errorf("csv over-limit body = %q, want %s envelope", body, codeBodyTooLarge)
	}
}

// TestLoadShedding: with the semaphore held, repair endpoints shed with
// 503 + Retry-After while unlimited endpoints keep answering; releasing
// the slot restores service.
func TestLoadShedding(t *testing.T) {
	s, srv := newOpsServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{} // occupy the only slot
	resp, err := http.Post(srv.URL+"/repair", "application/json",
		strings.NewReader(`{"tuples": []}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if code := decodeEnvelope(t, resp); code != codeOverloaded {
		t.Errorf("code = %q", code)
	}
	// Health and metrics stay reachable under shed.
	for _, path := range []string{"/healthz", "/metrics", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s under shed = %d", path, resp.StatusCode)
		}
	}
	<-s.sem
	resp, err = http.Post(srv.URL+"/repair", "application/json",
		strings.NewReader(`{"tuples": []}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", resp.StatusCode)
	}
}

// slowChunk blocks once, then ends; stitched into a request body it
// simulates a stalled upload.
type slowChunk struct {
	d    time.Duration
	done bool
}

func (s *slowChunk) Read(p []byte) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	time.Sleep(s.d)
	s.done = true
	return 0, io.EOF
}

// TestStreamingDeadline: a stalled CSV upload is cut off by the
// per-request deadline and reported as request_timeout. The context is
// polled every 64 rows, so the tail of the stream must exceed that.
func TestStreamingDeadline(t *testing.T) {
	_, srv := newOpsServer(t, Config{RequestTimeout: 20 * time.Millisecond})
	var rows strings.Builder
	for i := 0; i < 70; i++ {
		rows.WriteString("Ian,China,Shanghai,Hongkong,ICDE\n")
	}
	body := io.MultiReader(
		strings.NewReader("name,country,capital,city,conf\n"),
		&slowChunk{d: 60 * time.Millisecond},
		strings.NewReader(rows.String()),
	)
	resp, err := http.Post(srv.URL+"/repair/csv", "text/csv", body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), codeTimeout) {
		t.Errorf("stalled stream body = %q, want %s envelope", raw, codeTimeout)
	}
}

// TestMetricsEndpoint: the exposition carries the request counters, the
// repair totals, the latency histogram and the ruleset identity.
func TestMetricsEndpoint(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	resp, err := http.Post(srv.URL+"/repair", "application/json",
		strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`fixserve_requests_total{endpoint="/repair"} 1`,
		"fixserve_tuples_total 1",
		"fixserve_tuples_repaired_total 1",
		"fixserve_rules_fired_total 2",
		"fixserve_oov_cells_total 0",
		"fixserve_ruleset_version 1",
		"fixserve_request_duration_seconds_bucket",
		"fixserve_request_duration_seconds_count",
		`fixserve_ruleset_info{version="1",hash=`,
		"# TYPE fixserve_requests_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServerStatsEndpoint: /stats mirrors the counters in JSON with
// latency quantiles.
func TestServerStatsEndpoint(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/repair", "application/json",
			strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serverStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.RulesetVersion != 1 || stats.Rules != 2 {
		t.Errorf("stats identity = %+v", stats)
	}
	if stats.Tuples != 3 || stats.TuplesRepaired != 3 || stats.RulesFired != 6 {
		t.Errorf("stats totals = %+v", stats)
	}
	if stats.Requests["/repair"] != 3 {
		t.Errorf("requests = %v", stats.Requests)
	}
	if stats.LatencyP99Ms < stats.LatencyP50Ms {
		t.Errorf("quantiles inverted: %+v", stats)
	}
}

// reloadPair returns two consistent single-rule rulesets over the Travel
// schema that repair the same dirty tuple to different facts, plus the
// fact each produces — the fixture for every reload test.
func reloadPair() (a, b *core.Ruleset) {
	sch := schema.New("Travel", "name", "country", "capital", "city", "conf")
	mk := func(fact string) *core.Ruleset {
		return core.MustRuleset(core.MustNew("phi1", sch,
			map[string]string{"country": "China"},
			"capital", []string{"Shanghai", "Hongkong"}, fact))
	}
	return mk("Beijing"), mk("Peking")
}

// TestReloadEndpoint: a reload swaps the ruleset, bumps the version and
// changes the hash; repairs afterwards use the new rules.
func TestReloadEndpoint(t *testing.T) {
	rsA, rsB := reloadPair()
	next := rsB
	cfg := Config{Loader: func() (*core.Ruleset, error) { return next, nil }}
	repA, err := repair.NewRepairerChecked(rsA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logger = discardLogger
	s := NewWithConfig(repA, cfg)
	srv := httptest.NewServer(s)
	defer srv.Close()

	repairCapital := func() (string, string) {
		resp, err := http.Post(srv.URL+"/repair", "application/json",
			strings.NewReader(`{"tuples": [["Ian","China","Shanghai","x","y"]]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out repairResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Repaired[0].Tuple[2], resp.Header.Get(VersionHeader)
	}

	if capital, v := repairCapital(); capital != "Beijing" || v != "1" {
		t.Fatalf("pre-reload: capital %q version %s", capital, v)
	}
	hash1 := s.eng.Load().hash

	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info RulesetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != 2 || info.Rules != 1 || info.Hash == hash1 {
		t.Fatalf("reload info = %+v (old hash %s)", info, hash1)
	}
	if capital, v := repairCapital(); capital != "Peking" || v != "2" {
		t.Fatalf("post-reload: capital %q version %s", capital, v)
	}
}

// TestReloadRejectsBadRuleset: loader failures and inconsistent rulesets
// are refused with their envelope codes and leave the engine untouched.
func TestReloadRejectsBadRuleset(t *testing.T) {
	rsA, _ := reloadPair()
	sch := rsA.Schema()
	// An Example 8-style conflict: same evidence, contradictory facts.
	inconsistent := core.MustRuleset(
		core.MustNew("x", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai"}, "Beijing"),
		core.MustNew("y", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai"}, "Nanjing"),
	)
	mode := "error"
	cfg := Config{Loader: func() (*core.Ruleset, error) {
		if mode == "error" {
			return nil, io.ErrUnexpectedEOF
		}
		return inconsistent, nil
	}, Logger: discardLogger}
	repA, err := repair.NewRepairerChecked(rsA)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(repA, cfg)
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("loader-error status = %d, want 500", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != codeReloadFailed {
		t.Errorf("code = %q", code)
	}

	mode = "inconsistent"
	resp, err = http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("inconsistent status = %d, want 422", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != codeInconsistent {
		t.Errorf("code = %q", code)
	}
	if v := s.eng.Load().version; v != 1 {
		t.Errorf("failed reloads bumped version to %d", v)
	}
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serverStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.ReloadFailures != 2 || stats.Reloads != 0 {
		t.Errorf("reload counters = %+v", stats)
	}
}

// TestRulesetHashStable: the hash depends on rule content only, so two
// replicas loading the same file agree.
func TestRulesetHashStable(t *testing.T) {
	rsA, rsB := reloadPair()
	rsA2, _ := reloadPair()
	if RulesetHash(rsA) != RulesetHash(rsA2) {
		t.Error("identical rulesets hash differently")
	}
	if RulesetHash(rsA) == RulesetHash(rsB) {
		t.Error("different rulesets share a hash")
	}
}
