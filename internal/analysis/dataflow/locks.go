package dataflow

import (
	"go/token"
	"go/types"
	"sort"

	"fixrule/internal/analysis/cfg"
)

// This file is the lock-state dataflow: a must-held analysis of
// sync.Mutex/RWMutex values over a function's CFG. lockscope turns its
// findings into diagnostics; sharedcapture consults HeldAtPos to decide
// whether a captured-variable write is mutex-protected.

// Per-key lattice: absent = unheld on every path reaching here,
// stHeld = held on every path, stConflict = held on some paths only.
const (
	stHeld uint8 = iota + 1
	stConflict
)

// lockState is the dataflow fact: the lock keys held (or in conflict)
// entering a block, plus the keys a reached `defer x.Unlock()` will
// release at function exit. Treated as immutable; transfer copies.
type lockState struct {
	held     map[LockKey]uint8
	deferred map[LockKey]bool
}

func (s lockState) clone() lockState {
	c := lockState{held: map[LockKey]uint8{}, deferred: map[LockKey]bool{}}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func (s lockState) equal(o lockState) bool {
	if len(s.held) != len(o.held) || len(s.deferred) != len(o.deferred) {
		return false
	}
	for k, v := range s.held {
		if o.held[k] != v {
			return false
		}
	}
	for k := range s.deferred {
		if !o.deferred[k] {
			return false
		}
	}
	return true
}

func joinLocks(a, b lockState) lockState {
	j := lockState{held: map[LockKey]uint8{}, deferred: map[LockKey]bool{}}
	for k, va := range a.held {
		if vb, ok := b.held[k]; ok && va == stHeld && vb == stHeld {
			j.held[k] = stHeld
		} else {
			// Disagreement (or an inherited conflict) on either side.
			j.held[k] = stConflict
		}
	}
	for k := range b.held {
		if _, ok := a.held[k]; !ok {
			j.held[k] = stConflict
		}
	}
	for k := range a.deferred {
		j.deferred[k] = true
	}
	for k := range b.deferred {
		j.deferred[k] = true
	}
	return j
}

// LockFindingKind classifies one lock-discipline finding.
type LockFindingKind int

const (
	// BlockingWhileHeld: a blocking operation executes with a mutex held.
	BlockingWhileHeld LockFindingKind = iota
	// MergeImbalance: control-flow paths merge with a mutex held on some
	// and released on others.
	MergeImbalance
	// UnlockWithoutLock: an Unlock with no matching Lock on any path.
	UnlockWithoutLock
	// DoubleLock: a Lock while the same (non-reentrant) mutex is already
	// held on every path — self-deadlock.
	DoubleLock
)

// A LockFinding is one violation of the lock discipline.
type LockFinding struct {
	Kind LockFindingKind
	Pos  token.Pos
	Key  string // printed lock path ("r.mu", "s.mu[R]")
	Desc string // blocking-operation description for BlockingWhileHeld
}

// LockFacts is the solved lock-state analysis of one function body.
type LockFacts struct {
	info *types.Info
	g    *cfg.Graph
	in   map[*cfg.Block]lockState
	ops  map[*cfg.Block][]Op // cached per-block ops, in execution order
	any  bool                // whether the body contains any lock op
}

// AnalyzeLocks runs the must-held lock dataflow over the body's CFG.
func AnalyzeLocks(info *types.Info, g *cfg.Graph) *LockFacts {
	lf := &LockFacts{info: info, g: g, ops: map[*cfg.Block][]Op{}}
	for _, b := range g.Blocks {
		var ops []Op
		for _, n := range b.Nodes {
			nodeOps := NodeOps(info, n)
			if g.SelectComm(n) {
				// The select head already blocked for this comm; its own
				// channel operation completes immediately.
				kept := nodeOps[:0]
				for _, op := range nodeOps {
					if op.Kind == OpBlocking && (op.Desc == "channel send" || op.Desc == "channel receive") {
						continue
					}
					kept = append(kept, op)
				}
				nodeOps = kept
			}
			ops = append(ops, nodeOps...)
		}
		lf.ops[b] = ops
		for _, op := range ops {
			if op.Kind == OpLock || op.Kind == OpUnlock || op.Kind == OpDeferUnlock {
				lf.any = true
			}
		}
	}
	if !lf.any {
		return lf
	}
	entry := lockState{held: map[LockKey]uint8{}, deferred: map[LockKey]bool{}}
	lf.in = Forward(g, entry,
		func(b *cfg.Block, in lockState) lockState { return lf.transfer(b, in) },
		joinLocks,
		lockState.equal,
	)
	return lf
}

// HasLocks reports whether the body contains any lock operation at all —
// callers skip the reporting pass when false.
func (lf *LockFacts) HasLocks() bool { return lf.any }

// transfer applies a block's ops to the incoming state. Blocks ending in
// a return additionally release the deferred unlocks (defers run on
// function exit), so the state joining into Exit is the post-defer one.
func (lf *LockFacts) transfer(b *cfg.Block, in lockState) lockState {
	out := in.clone()
	for _, op := range lf.ops[b] {
		switch op.Kind {
		case OpLock:
			out.held[op.Key] = stHeld
		case OpUnlock:
			delete(out.held, op.Key)
		case OpDeferUnlock:
			out.deferred[op.Key] = true
		}
	}
	if b.Return != nil {
		for k := range out.deferred {
			delete(out.held, k)
		}
	}
	return out
}

// Findings runs the reporting pass over the solved states.
func (lf *LockFacts) Findings() []LockFinding {
	if !lf.any {
		return nil
	}
	var out []LockFinding
	for _, b := range lf.g.Blocks {
		in, reachable := lf.in[b]
		if !reachable {
			continue // dead code
		}
		// Fresh merge conflicts: two predecessors whose (defer-adjusted,
		// when merging into Exit) out-states disagree cleanly.
		if len(b.Preds) >= 2 {
			for _, k := range lf.conflictKeys(b, in) {
				out = append(out, LockFinding{Kind: MergeImbalance, Pos: lf.mergePos(b), Key: k.String()})
			}
		}
		st := in.clone()
		for _, op := range lf.ops[b] {
			switch op.Kind {
			case OpLock:
				if st.held[op.Key] == stHeld {
					out = append(out, LockFinding{Kind: DoubleLock, Pos: op.Pos, Key: op.Key.String()})
				}
				st.held[op.Key] = stHeld
			case OpUnlock:
				if _, held := st.held[op.Key]; !held {
					out = append(out, LockFinding{Kind: UnlockWithoutLock, Pos: op.Pos, Key: op.Key.String()})
				}
				delete(st.held, op.Key)
			case OpDeferUnlock:
				st.deferred[op.Key] = true
			case OpBlocking:
				for _, k := range sortedKeys(st.held) {
					if st.held[k] == stHeld {
						out = append(out, LockFinding{Kind: BlockingWhileHeld, Pos: op.Pos,
							Key: k.String(), Desc: op.Desc})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// conflictKeys finds keys whose held-state disagrees cleanly between two
// reachable predecessors of b: one pred ends with the key held, another
// with it unheld. Conflicts inherited from upstream merges (a pred
// already in conflict) are not re-reported.
func (lf *LockFacts) conflictKeys(b *cfg.Block, in lockState) []LockKey {
	type tally struct{ held, unheld bool }
	tallies := map[LockKey]*tally{}
	preds := 0
	for _, p := range b.Preds {
		pin, ok := lf.in[p]
		if !ok {
			continue // unreachable predecessor contributes no path
		}
		preds++
		pout := lf.transfer(p, pin)
		if b == lf.g.Exit && p.Return == nil {
			// Falling off the end of the body also runs the defers.
			for k := range pout.deferred {
				delete(pout.held, k)
			}
		}
		for k, v := range pout.held {
			t := tallies[k]
			if t == nil {
				t = &tally{}
				tallies[k] = t
			}
			if v == stHeld {
				t.held = true
			}
		}
	}
	if preds < 2 {
		return nil
	}
	var keys []LockKey
	for k, t := range tallies {
		if !t.held {
			continue
		}
		// Held on at least one path; unheld on another iff some reachable
		// pred's out-state lacks the key.
		unheldSomewhere := false
		for _, p := range b.Preds {
			pin, ok := lf.in[p]
			if !ok {
				continue
			}
			pout := lf.transfer(p, pin)
			if b == lf.g.Exit && p.Return == nil {
				for dk := range pout.deferred {
					delete(pout.held, dk)
				}
			}
			if _, has := pout.held[k]; !has {
				unheldSomewhere = true
				break
			}
		}
		if unheldSomewhere {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Path < keys[j].Path })
	return keys
}

// mergePos picks a position for a merge finding: the block's first node,
// or the graph exit's best-effort stand-in (the last return seen).
func (lf *LockFacts) mergePos(b *cfg.Block) token.Pos {
	if p := b.Pos(); p != token.NoPos {
		return p
	}
	// Exit (and empty join blocks): use the position of a predecessor's
	// last node so the diagnostic lands on a real line.
	for _, p := range b.Preds {
		if len(p.Nodes) > 0 {
			return p.Nodes[len(p.Nodes)-1].Pos()
		}
	}
	return token.NoPos
}

// HeldAtPos returns the printed keys of mutexes held on every path at the
// given position (must-held), by replaying the containing block's ops up
// to pos. Returns nil when pos is not inside a reachable block.
func (lf *LockFacts) HeldAtPos(pos token.Pos) []string {
	if !lf.any {
		return nil
	}
	for _, b := range lf.g.Blocks {
		in, ok := lf.in[b]
		if !ok || !containsPos(b, pos) {
			continue
		}
		st := in.clone()
		for _, op := range lf.ops[b] {
			if op.Pos >= pos {
				break
			}
			switch op.Kind {
			case OpLock:
				st.held[op.Key] = stHeld
			case OpUnlock:
				delete(st.held, op.Key)
			}
		}
		var held []string
		for _, k := range sortedKeys(st.held) {
			if st.held[k] == stHeld {
				held = append(held, k.String())
			}
		}
		return held
	}
	return nil
}

func containsPos(b *cfg.Block, pos token.Pos) bool {
	for _, n := range b.Nodes {
		if n.Pos() <= pos && pos <= n.End() {
			return true
		}
	}
	return false
}

func sortedKeys(m map[LockKey]uint8) []LockKey {
	keys := make([]LockKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Path < keys[j].Path })
	return keys
}
