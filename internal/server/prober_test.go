package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newFleetFixture stands up nWorkers single-tenant workers behind a proxy
// whose prober ticks every interval. Callers get the proxy front plus the
// worker listeners (to kill one and watch the fleet degrade).
func newFleetFixture(t *testing.T, nWorkers int, interval time.Duration) (*httptest.Server, []*httptest.Server) {
	t.Helper()
	var workers []*httptest.Server
	var urls []string
	for i := 0; i < nWorkers; i++ {
		w := httptest.NewServer(NewWithConfig(mustTestRepairer(t), Config{Logger: discardLogger}))
		t.Cleanup(w.Close)
		workers = append(workers, w)
		urls = append(urls, w.URL)
	}
	p, err := NewProxy(ProxyConfig{
		Workers:       urls,
		Logger:        discardLogger,
		ProbeInterval: interval,
		ProbeTimeout:  interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return front, workers
}

func getFleet(t *testing.T, url string) fleetResponse {
	t.Helper()
	resp, err := http.Get(url + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet = %d", resp.StatusCode)
	}
	var f fleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	return f
}

// waitFleet polls /fleet until cond holds or the deadline passes; the
// returned response is the last one observed.
func waitFleet(t *testing.T, url string, cond func(fleetResponse) bool) fleetResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var f fleetResponse
	for time.Now().Before(deadline) {
		f = getFleet(t, url)
		if cond(f) {
			return f
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fleet condition not reached before deadline; last: %+v", f)
	return f
}

// TestFleetDegradesWhenWorkerDies: on a 1-proxy/2-worker topology /fleet
// first reports both workers healthy with an aggregated quality rollup,
// then marks the fleet degraded within a probe interval of one worker
// dying — and recovers when probes cannot, because the listener is gone
// for good.
func TestFleetDegradesWhenWorkerDies(t *testing.T) {
	front, workers := newFleetFixture(t, 2, 25*time.Millisecond)

	// Push one repair through a worker so the aggregate has content.
	resp := postJSON(t, workers[0].URL+"/repair", ianTuple)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker /repair = %d", resp.StatusCode)
	}
	resp.Body.Close()

	f := waitFleet(t, front.URL, func(f fleetResponse) bool { return f.Healthy == 2 })
	if f.Degraded || f.Total != 2 {
		t.Fatalf("healthy fleet = %+v", f)
	}
	if f.Mode != "proxy" || f.Replicas <= 0 || f.ProbeIntervalSeconds != 0.025 {
		t.Errorf("fleet topology fields = mode %q, replicas %d, interval %v",
			f.Mode, f.Replicas, f.ProbeIntervalSeconds)
	}
	f = waitFleet(t, front.URL, func(f fleetResponse) bool {
		return f.Quality != nil && f.Quality.Window.Rows >= 1
	})
	if f.Quality.WorkersReporting != 2 {
		t.Errorf("workers_reporting = %d, want 2", f.Quality.WorkersReporting)
	}
	if f.Quality.Window.RowsRepaired != 1 {
		t.Errorf("aggregated rows_repaired = %d, want 1", f.Quality.Window.RowsRepaired)
	}

	// Kill worker 0 and watch the fleet notice.
	dead := workers[0].URL
	workers[0].Close()
	f = waitFleet(t, front.URL, func(f fleetResponse) bool { return f.Degraded })
	if f.Healthy != 1 {
		t.Errorf("degraded fleet healthy = %d, want 1", f.Healthy)
	}
	for _, w := range f.Workers {
		if w.Worker == dead {
			if w.Up || w.ConsecutiveFailures == 0 || w.Error == "" {
				t.Errorf("dead worker state = %+v", w)
			}
		} else if !w.Up {
			t.Errorf("surviving worker %s reported down", w.Worker)
		}
	}

	// The verbose health envelope tells the same story.
	resp, err := http.Get(front.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verbose healthz = %d, want 200 (the proxy itself is alive)", resp.StatusCode)
	}
	var h proxyHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "degraded" || h.Workers != 2 || h.Healthy != 1 {
		t.Errorf("verbose health = %+v", h)
	}
	if len(h.Unreachable) != 1 || h.Unreachable[0] != dead {
		t.Errorf("unreachable = %v, want [%s]", h.Unreachable, dead)
	}
}

// TestProxyQualityAggregate: the proxy's own /quality serves the fleet
// rollup once probes land, and 503 quality_unavailable before any worker
// has reported.
func TestProxyQualityAggregate(t *testing.T) {
	front, workers := newFleetFixture(t, 2, 25*time.Millisecond)
	resp := postJSON(t, workers[1].URL+"/repair", ianTuple)
	resp.Body.Close()

	waitFleet(t, front.URL, func(f fleetResponse) bool {
		return f.Quality != nil && f.Quality.Window.Rows >= 1
	})
	resp, err := http.Get(front.URL + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy /quality = %d", resp.StatusCode)
	}
	var q struct {
		Scope  string `json:"scope"`
		Window QualitySnapshot
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Scope != "fleet" || q.Window.Rows < 1 {
		t.Errorf("proxy quality = %+v", q)
	}
}

// TestProxyQualityUnavailable: with no reachable worker the proxy's
// /quality answers 503 with the stable quality_unavailable code.
func TestProxyQualityUnavailable(t *testing.T) {
	p, err := NewProxy(ProxyConfig{
		Workers:       []string{"http://127.0.0.1:1"}, // nothing listens here
		Logger:        discardLogger,
		ProbeInterval: time.Hour, // the immediate first round is the only one
		ProbeTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/quality with dead fleet = %d, want 503", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != codeQualityUnavailable {
		t.Errorf("code = %q, want %q", env.Error.Code, codeQualityUnavailable)
	}
}

// TestProberCloseIdempotent: Close joins the probe goroutine and is safe
// to call more than once (fixserve calls it on drain; tests via Cleanup).
func TestProberCloseIdempotent(t *testing.T) {
	w := httptest.NewServer(NewWithConfig(mustTestRepairer(t), Config{Logger: discardLogger}))
	defer w.Close()
	p, err := NewProxy(ProxyConfig{
		Workers:       []string{w.URL},
		Logger:        discardLogger,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
}
