// Package ruleio reads and writes fixing rules: a human-oriented rule DSL
// and a JSON encoding, both round-tripping with internal/core rulesets.
//
// The DSL mirrors the paper's notation. A file declares a schema and then
// rules; each rule gives the evidence pattern (WHEN), the negative patterns
// (IF ... IN) and the fact (THEN):
//
//	# φ1 of the running example
//	SCHEMA Travel(name, country, capital, city, conf)
//
//	RULE phi1
//	  WHEN country = "China"
//	  IF capital IN ("Shanghai", "Hongkong")
//	  THEN capital = "Beijing"
//
// Keywords are upper-case; attribute names are identifiers; values are
// double-quoted strings. '#' comments run to end of line.
package ruleio

import (
	"fmt"

	"fixrule/internal/core"
	"fixrule/internal/schema"
)

// parser is a recursive-descent parser over the lexer.
type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("line %d: expected %v, found %v %q",
			p.tok.line, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// expectKeyword consumes an identifier with the exact given text.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return fmt.Errorf("line %d: expected %q, found %q", p.tok.line, kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

// Parse reads a full DSL file: a SCHEMA declaration followed by RULE
// blocks.
func Parse(src string) (*core.Ruleset, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	sch, err := p.parseSchema()
	if err != nil {
		return nil, err
	}
	return p.parseRules(sch)
}

// ParseWith reads a DSL fragment containing only RULE blocks, against an
// externally supplied schema. A SCHEMA declaration, if present, must match
// the supplied schema.
func ParseWith(src string, sch *schema.Schema) (*core.Ruleset, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.atKeyword("SCHEMA") {
		declared, err := p.parseSchema()
		if err != nil {
			return nil, err
		}
		if !declared.Equal(sch) {
			return nil, fmt.Errorf("ruleio: declared schema %s does not match expected %s", declared, sch)
		}
	}
	return p.parseRules(sch)
}

func (p *parser) parseSchema() (*schema.Schema, error) {
	if err := p.expectKeyword("SCHEMA"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		a, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	// schema.New panics on malformed input; convert to an error.
	var sch *schema.Schema
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("line %d: %v", name.line, r)
			}
		}()
		sch = schema.New(name.text, attrs...)
		return nil
	}(); err != nil {
		return nil, err
	}
	return sch, nil
}

func (p *parser) parseRules(sch *schema.Schema) (*core.Ruleset, error) {
	rs := core.NewRuleset(sch)
	for p.tok.kind != tokEOF {
		r, err := p.parseRule(sch)
		if err != nil {
			return nil, err
		}
		if err := rs.Add(r); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// parseRule reads one RULE block:
//
//	RULE name
//	  WHEN attr = "v" [, attr = "v" ...]
//	  IF attr IN ("v" [, "v" ...])
//	  THEN attr = "v"
func (p *parser) parseRule(sch *schema.Schema) (*core.Rule, error) {
	if err := p.expectKeyword("RULE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}

	if err := p.expectKeyword("WHEN"); err != nil {
		return nil, err
	}
	evidence := map[string]string{}
	for {
		attr, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		val, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, dup := evidence[attr.text]; dup {
			return nil, fmt.Errorf("line %d: duplicate evidence attribute %q", attr.line, attr.text)
		}
		evidence[attr.text] = val.text
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}

	if err := p.expectKeyword("IF"); err != nil {
		return nil, err
	}
	target, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var negatives []string
	for {
		v, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		negatives = append(negatives, v.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}

	if err := p.expectKeyword("THEN"); err != nil {
		return nil, err
	}
	thenAttr, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if thenAttr.text != target.text {
		return nil, fmt.Errorf("line %d: THEN attribute %q differs from IF attribute %q",
			thenAttr.line, thenAttr.text, target.text)
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	fact, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}

	r, err := core.New(name.text, sch, evidence, target.text, negatives, fact.text)
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", name.line, err)
	}
	return r, nil
}
