package fd

import (
	"strings"
	"testing"

	"fixrule/internal/schema"
)

func TestParseCFD(t *testing.T) {
	sch := schema.New("R", "country", "capital", "city")
	c, err := ParseCFD(sch, "country -> capital, (country=China, capital=Beijing)")
	if err != nil {
		t.Fatal(err)
	}
	if c.PatternValue("country") != "China" || c.PatternValue("capital") != "Beijing" {
		t.Errorf("pattern = %v/%v", c.PatternValue("country"), c.PatternValue("capital"))
	}
	if got := c.FD().String(); got != "country -> capital" {
		t.Errorf("embedded FD = %q", got)
	}

	// Wildcards and omissions are equivalent.
	c2, err := ParseCFD(sch, "country -> capital, (country=China, capital=_)")
	if err != nil {
		t.Fatal(err)
	}
	c3, err := ParseCFD(sch, "country -> capital, (country=China)")
	if err != nil {
		t.Fatal(err)
	}
	if c2.PatternValue("capital") != PatternWildcard || c3.PatternValue("capital") != PatternWildcard {
		t.Error("wildcard handling differs")
	}

	// Empty pattern tuple: all wildcards (plain FD semantics).
	c4, err := ParseCFD(sch, "country -> capital, ()")
	if err != nil {
		t.Fatal(err)
	}
	if c4.PatternValue("country") != PatternWildcard {
		t.Error("empty pattern should default to wildcards")
	}
}

func TestParseCFDErrors(t *testing.T) {
	sch := schema.New("R", "country", "capital", "city")
	cases := []struct{ src, wantErr string }{
		{"country -> capital", "missing pattern"},
		{"country capital, (x=1)", "missing \"->\""},
		{"country -> capital, (country=China", "unterminated"},
		{"country -> capital, (country China)", "malformed"},
		{"country -> capital, (=China)", "malformed"},
		{"country -> capital, (country=China, country=Japan)", "duplicate"},
		{"country -> capital, (city=Paris)", "not in X"},
		{"country -> capital, (country=China) extra", "trailing"},
		{"zzz -> capital, (country=China)", "not in"},
	}
	for _, c := range cases {
		_, err := ParseCFD(sch, c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseCFD(%q) err = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestParseCFDRoundTripWithViolations(t *testing.T) {
	sch := schema.New("R", "country", "capital", "city")
	c, err := ParseCFD(sch, "country -> capital, (country=China, capital=Beijing)")
	if err != nil {
		t.Fatal(err)
	}
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"China", "Shanghai", "x"})
	rel.Append(schema.Tuple{"Japan", "Kyoto", "x"})
	vs := CFDViolations(rel, []*CFD{c})
	if len(vs) != 1 || !vs[0].Constant || vs[0].Rows[0] != 0 {
		t.Errorf("violations = %+v", vs)
	}
}
