// Package fixrule is the public API of this repository: an implementation
// of "Towards Dependable Data Repairing with Fixing Rules" (Wang & Tang,
// SIGMOD 2014).
//
// A fixing rule precisely captures which attribute of a tuple is wrong and
// what value it should take: an evidence pattern over attributes X, a set
// of negative patterns for a target attribute B, and a fact — the correct
// value of B given the evidence. Given a consistent set of fixing rules,
// repairs are automatic, deterministic, and dependable: every tuple has a
// unique fix regardless of rule application order.
//
// The package wraps the internal implementation with a stable surface:
//
//   - schemas, tuples and relations (NewSchema, NewRelation, LoadCSV);
//   - rule construction and the rule DSL (NewRule, ParseRules);
//   - consistency checking and resolution (CheckConsistency, Resolve);
//   - implication / redundancy analysis (Implies, Minimize);
//   - repairing (NewRepairer with the Chase and Linear algorithms);
//   - FD-based rule mining (MineRules, EnrichRules) and accuracy scoring
//     (Evaluate).
//
// See examples/quickstart for the paper's running Travel example.
package fixrule

import (
	"fixrule/internal/consistency"
	"fixrule/internal/core"
	"fixrule/internal/fd"
	"fixrule/internal/fddisc"
	"fixrule/internal/implication"
	"fixrule/internal/metrics"
	"fixrule/internal/repair"
	"fixrule/internal/rulegen"
	"fixrule/internal/ruleio"
	"fixrule/internal/schema"
)

// Re-exported relational building blocks.
type (
	// Schema is a relation schema R: a named, ordered attribute list.
	Schema = schema.Schema
	// Tuple is one row; values are positional strings.
	Tuple = schema.Tuple
	// Relation is an in-memory table over a Schema.
	Relation = schema.Relation
	// Cell addresses one value in a Relation.
	Cell = schema.Cell
)

// Re-exported fixing-rule types.
type (
	// Rule is a fixing rule φ: ((X, tp[X]), (B, Tp[B])) → tp+[B].
	Rule = core.Rule
	// Ruleset is an ordered set Σ of fixing rules over one schema.
	Ruleset = core.Ruleset
	// Step records one rule application during a repair.
	Step = core.Step
	// Conflict explains why two rules are inconsistent.
	Conflict = consistency.Conflict
	// Repairer repairs tuples and relations with a fixed ruleset.
	Repairer = repair.Repairer
	// RepairResult summarises a relation-level repair.
	RepairResult = repair.Result
	// Scores holds precision/recall/F1 against ground truth.
	Scores = metrics.Scores
	// FD is a functional dependency X → Y, the substrate rules are mined
	// from.
	FD = fd.FD
)

// Repair algorithm selectors (Section 6 of the paper).
const (
	// Chase is cRepair: the chase-based algorithm, O(size(Σ)·|R|) per
	// tuple.
	Chase = repair.Chase
	// Linear is lRepair: inverted lists + hash counters, O(size(Σ)) per
	// tuple.
	Linear = repair.Linear
)

// NewSchema builds a schema; it panics on duplicate or empty attribute
// names (a malformed schema is a programming error).
func NewSchema(name string, attrs ...string) *Schema { return schema.New(name, attrs...) }

// NewRelation creates an empty relation over s.
func NewRelation(s *Schema) *Relation { return schema.NewRelation(s) }

// LoadCSV reads a relation in the given schema from a CSV file whose header
// matches the schema.
func LoadCSV(path string, s *Schema) (*Relation, error) { return schema.LoadCSV(path, s) }

// SaveCSV writes a relation to a CSV file with a header row.
func SaveCSV(path string, r *Relation) error { return schema.SaveCSV(path, r) }

// NewRule validates and constructs a fixing rule: evidence tp[X], target B,
// negative patterns Tp[B] and fact tp+[B].
func NewRule(name string, sch *Schema, evidence map[string]string, target string, negative []string, fact string) (*Rule, error) {
	return core.New(name, sch, evidence, target, negative, fact)
}

// NewRuleset creates an empty ruleset over sch.
func NewRuleset(sch *Schema) *Ruleset { return core.NewRuleset(sch) }

// RulesetOf creates a ruleset from rules sharing one schema.
func RulesetOf(rules ...*Rule) (*Ruleset, error) { return core.NewRulesetOf(rules...) }

// ParseRules reads a ruleset from the rule DSL (SCHEMA declaration followed
// by RULE blocks); see package internal/ruleio for the grammar.
func ParseRules(src string) (*Ruleset, error) { return ruleio.Parse(src) }

// ParseRulesWith reads DSL RULE blocks against an existing schema.
func ParseRulesWith(src string, sch *Schema) (*Ruleset, error) { return ruleio.ParseWith(src, sch) }

// FormatRules renders a ruleset in the DSL; the output parses back.
func FormatRules(rs *Ruleset) string { return ruleio.Format(rs) }

// MarshalRulesJSON encodes a ruleset (with schema) as JSON.
func MarshalRulesJSON(rs *Ruleset) ([]byte, error) { return ruleio.MarshalJSON(rs) }

// UnmarshalRulesJSON decodes a ruleset produced by MarshalRulesJSON.
func UnmarshalRulesJSON(data []byte) (*Ruleset, error) { return ruleio.UnmarshalJSON(data) }

// CheckConsistency decides whether Σ is conflict-free using the paper's
// O(size(Σ)²) rule-characterisation checker. It returns nil when every
// tuple has a unique fix, else the first conflict found.
func CheckConsistency(rs *Ruleset) *Conflict {
	return consistency.IsConsistent(rs, consistency.ByRule)
}

// AllConflicts returns every conflicting rule pair in Σ.
func AllConflicts(rs *Ruleset) []*Conflict {
	return consistency.AllConflicts(rs, consistency.ByRule)
}

// CheckAddition decides whether adding one rule to an already-consistent Σ
// preserves consistency, checking only the new pairs — O(size(Σ)) instead
// of O(size(Σ)²). Intended for interactive rule authoring.
func CheckAddition(rs *Ruleset, r *Rule) *Conflict {
	return consistency.CheckAddition(rs, r, consistency.ByRule)
}

// ResolveStrategy selects how Resolve repairs an inconsistent ruleset.
type ResolveStrategy int

const (
	// TrimNegatives removes exactly the negative patterns that cause each
	// conflict (the paper's expert edit), dropping a rule only when its
	// negatives are exhausted.
	TrimNegatives ResolveStrategy = iota
	// RemoveConflicting drops every rule involved in a conflict (the
	// conservative strategy).
	RemoveConflicting
	// MinimumRemoval drops a greedy minimum vertex cover of the conflict
	// graph: the fewest rules whose removal makes Σ consistent.
	MinimumRemoval
)

// Resolve returns a consistent revision of Σ using the chosen strategy,
// plus the names of the rules that were edited or removed. The input is
// not modified.
func Resolve(rs *Ruleset, strategy ResolveStrategy) (*Ruleset, []string, error) {
	if strategy == MinimumRemoval {
		fixed, removed := consistency.ResolveByMinCover(rs, consistency.ByRule)
		return fixed, removed, nil
	}
	var r consistency.Resolver = consistency.TrimNegatives{}
	if strategy == RemoveConflicting {
		r = consistency.RemoveBoth{}
	}
	fixed, edits, err := consistency.ResolveAll(rs, r, consistency.ByRule)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(edits))
	for i, e := range edits {
		names[i] = e.Name
	}
	return fixed, names, nil
}

// Implies decides whether Σ implies φ (φ is redundant): Σ ∪ {φ} is
// consistent and repairs every tuple identically to Σ. Σ must itself be
// consistent.
func Implies(rs *Ruleset, phi *Rule) (bool, error) {
	res, err := implication.Implies(rs, phi, implication.Options{})
	if err != nil {
		return false, err
	}
	return res.Implied, nil
}

// Minimize removes implied rules from Σ, returning the minimized set and
// the dropped rule names.
func Minimize(rs *Ruleset) (*Ruleset, []string, error) {
	return implication.Minimize(rs, implication.Options{})
}

// NewRepairer builds a repairer over Σ after verifying Σ is consistent —
// the precondition for unique fixes.
func NewRepairer(rs *Ruleset) (*Repairer, error) { return repair.NewRepairerChecked(rs) }

// Explanation is the provenance of one tuple's repair: every applied rule,
// the evidence that justified it, and the assured attributes. Produce one
// with Repairer.Explain.
type Explanation = repair.Explanation

// StreamStats summarises a Repairer.StreamCSV run.
type StreamStats = repair.StreamStats

// StreamOptions tunes the parallel streaming repairs
// (Repairer.StreamCSVParallelOpts / StreamFrelParallelOpts): worker count,
// rows per pipeline chunk, optional occupancy gauges, and an optional
// ChaseRecorder. The parallel streams produce byte-identical output and
// identical StreamStats to their sequential counterparts at any worker
// count.
type StreamOptions = repair.ParallelOptions

// ChaseRecorder captures per-tuple chase traces — which rules fired on
// which rows, in what order, with the assured-set evolution — from the
// Recorded repair variants and the Traced/Opts streaming entry points. A
// nil recorder is free. With an unlimited tuple cap the recorded rows are
// deterministic in (seed, sample rate), identical at any worker count;
// with a finite cap, which sampled rows land under the cap follows worker
// arrival order.
type ChaseRecorder = repair.ChaseRecorder

// DefaultRecorderTuples is the tuple cap NewChaseRecorder applies when
// maxTuples is 0.
const DefaultRecorderTuples = repair.DefaultRecorderTuples

// SampleRow reports whether a recorder built with (sampleRate, seed)
// would record the given row — the deterministic per-row decision behind
// ChaseRecorder sampling, exposed for callers that need to re-apply it.
func SampleRow(row int, sampleRate float64, seed uint64) bool {
	return repair.SampleRow(row, sampleRate, seed)
}

// TupleTrace is one recorded tuple's ordered rule-application sequence.
type TupleTrace = repair.TupleTrace

// TraceStep is one rule application inside a TupleTrace, in the Explain
// vocabulary (rule, evidence, attribute, old → new, assured set).
type TraceStep = repair.TraceStep

// NewChaseRecorder builds a recorder: maxTuples caps distinct recorded
// tuples (0 = a 256 default, negative = unlimited), sampleRate in [0, 1]
// picks rows deterministically from seed.
func NewChaseRecorder(maxTuples int, sampleRate float64, seed uint64) *ChaseRecorder {
	return repair.NewChaseRecorder(maxTuples, sampleRate, seed)
}

// ParseFD reads an FD in the notation "A, B -> C, D".
func ParseFD(sch *Schema, s string) (*FD, error) { return fd.Parse(sch, s) }

// DiscoverFDs mines minimal functional dependencies from data with a
// TANE-style levelwise search: determinants up to maxLHS attributes, and
// approximate FDs admitted while their g3 error (the fraction of tuples
// that would need deleting for the FD to hold) stays within maxError.
// Run it on dirty data with maxError around the expected noise rate to
// bootstrap the fully autonomous pipeline: DiscoverFDs → DiscoverRules →
// repair, with no expert input at all.
func DiscoverFDs(rel *Relation, maxLHS int, maxError float64) ([]*FD, error) {
	ds, err := fddisc.Discover(rel, fddisc.Config{MaxLHS: maxLHS, MaxError: maxError})
	if err != nil {
		return nil, err
	}
	return fddisc.Merge(ds), nil
}

// FDViolationCount returns the number of violated (FD, LHS group, attribute)
// combinations in rel.
func FDViolationCount(rel *Relation, fds []*FD) int { return len(fd.Violations(rel, fds)) }

// MineRules extracts fixing rules from the FD violations of dirty, using
// truth as the certifying expert, resolves any conflicts among them, and
// returns a consistent ruleset. maxRules caps the output (0 = unlimited);
// seed drives sampling.
func MineRules(truth, dirty *Relation, fds []*FD, maxRules int, seed int64) (*Ruleset, error) {
	return rulegen.MineConsistent(truth, dirty, fds, rulegen.Config{MaxRules: maxRules, Seed: seed})
}

// EnrichRules enlarges every rule's negative patterns with up to perRule
// known-wrong values from the domain relation, preserving consistency.
func EnrichRules(rs *Ruleset, domain *Relation, perRule int, seed int64) (*Ruleset, error) {
	return rulegen.Enrich(rs, domain, perRule, seed)
}

// DiscoverOptions tunes unsupervised rule discovery (the paper's Section 8
// future-work item, implemented here): majority support and confidence
// thresholds stand in for the expert, and the deviation bound filters out
// tuples whose LHS — rather than RHS — is corrupted.
type DiscoverOptions = rulegen.DiscoverConfig

// DiscoverRules mines fixing rules from dirty data alone — no ground truth
// and no expert — using majority voting within FD violation groups. The
// returned ruleset is consistent. Less dependable than MineRules, but
// usable when no reference data exists.
func DiscoverRules(dirty *Relation, fds []*FD, opts DiscoverOptions) (*Ruleset, error) {
	return rulegen.Discover(dirty, fds, opts)
}

// MasterSpec maps a master relation onto the data schema for
// RulesFromMaster: evidence attributes (data → master) plus the repaired
// attribute and its master column.
type MasterSpec = rulegen.MasterSpec

// RulesFromMaster mines fixing rules from a trusted master relation plus
// observed deviations in the dirty data — editing rules' master-data
// justification compiled into autonomous rules, with the conservative
// guard that a value the master knows as correct anywhere is never
// harvested as a negative pattern.
func RulesFromMaster(dirty, master *Relation, spec MasterSpec, maxRules int, seed int64) (*Ruleset, error) {
	return rulegen.FromMaster(dirty, master, spec, rulegen.Config{MaxRules: maxRules, Seed: seed})
}

// CFD is a conditional functional dependency (X → Y, tp).
type CFD = fd.CFD

// NewCFD builds a CFD over f with the given pattern tuple; pattern values
// are constants or "_" (any).
func NewCFD(f *FD, pattern map[string]string) (*CFD, error) { return fd.NewCFD(f, pattern) }

// ParseCFD reads a CFD in the notation
// "country -> capital, (country=China, capital=Beijing)".
func ParseCFD(sch *Schema, s string) (*CFD, error) { return fd.ParseCFD(sch, s) }

// RulesFromCFDs converts constant CFDs into fixing rules (the paper's
// "interaction with other data quality rules" direction): the CFD's RHS
// constant is the fact, its constant LHS pattern the evidence, and its
// violations in dirty supply the negative patterns.
func RulesFromCFDs(dirty *Relation, cfds []*CFD, maxRules int, seed int64) (*Ruleset, error) {
	return rulegen.FromCFDs(dirty, cfds, rulegen.Config{MaxRules: maxRules, Seed: seed})
}

// Evaluate scores a repair against ground truth using the paper's
// precision/recall definitions.
func Evaluate(truth, dirty, repaired *Relation) Scores {
	return metrics.Evaluate(truth, dirty, repaired)
}
