package fd

import (
	"fmt"
	"strings"

	"fixrule/internal/schema"
)

// ParseCFD reads a CFD in the notation
//
//	"country -> capital, (country=China, capital=Beijing)"
//
// i.e. an embedded FD followed by a parenthesised pattern tuple assigning
// constants (or '_') to attributes of X ∪ Y. Pattern entries may be
// omitted, defaulting to '_'. Whitespace is insignificant.
func ParseCFD(sch *schema.Schema, s string) (*CFD, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		return nil, fmt.Errorf("fd: %q: missing pattern tuple \"(...)\"", s)
	}
	head := strings.TrimSpace(s[:open])
	head = strings.TrimSuffix(head, ",")
	f, err := Parse(sch, head)
	if err != nil {
		return nil, err
	}
	closeIdx := strings.LastIndex(s, ")")
	if closeIdx < open {
		return nil, fmt.Errorf("fd: %q: unterminated pattern tuple", s)
	}
	if rest := strings.TrimSpace(s[closeIdx+1:]); rest != "" {
		return nil, fmt.Errorf("fd: %q: trailing content %q", s, rest)
	}
	pattern := map[string]string{}
	body := strings.TrimSpace(s[open+1 : closeIdx])
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("fd: %q: malformed pattern entry %q", s, part)
			}
			a := strings.TrimSpace(kv[0])
			v := strings.TrimSpace(kv[1])
			if a == "" || v == "" {
				return nil, fmt.Errorf("fd: %q: malformed pattern entry %q", s, part)
			}
			if _, dup := pattern[a]; dup {
				return nil, fmt.Errorf("fd: %q: duplicate pattern attribute %q", s, a)
			}
			pattern[a] = v
		}
	}
	return NewCFD(f, pattern)
}
