package strutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Beijing", "Beijing", 0},
		{"Beijing", "Bejing", 1},
		{"Shanghai", "Shangai", 1},
		{"Ottawa", "Ottawo", 1},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("abc", "abc") != 1 {
		t.Error("identical strings must score 1")
	}
	if Similarity("", "") != 1 {
		t.Error("empty strings must score 1")
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint strings = %v, want 0", s)
	}
	if s := Similarity("abcd", "abcx"); s != 0.75 {
		t.Errorf("Similarity(abcd, abcx) = %v, want 0.75", s)
	}
	if Similarity("a", "ab") <= Similarity("a", "abcdef") {
		t.Error("closer strings must score higher")
	}
}

func TestTypoAlwaysDiffers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := []string{"", "a", "ab", "Beijing", "Shanghai", "115K", "x"}
	for _, s := range inputs {
		for i := 0; i < 200; i++ {
			if got := Typo(rng, s); got == s {
				t.Fatalf("Typo(%q) returned the input unchanged", s)
			}
		}
	}
}

func TestTypoIsSmallEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		s := "Providence"
		got := Typo(rng, s)
		if d := Levenshtein(s, got); d == 0 || d > 2 {
			t.Fatalf("Typo(%q) = %q, edit distance %d, want 1..2", s, got, d)
		}
	}
}

func TestTypoDeterministic(t *testing.T) {
	a := Typo(rand.New(rand.NewSource(7)), "Beijing")
	b := Typo(rand.New(rand.NewSource(7)), "Beijing")
	if a != b {
		t.Errorf("same seed produced %q and %q", a, b)
	}
}
