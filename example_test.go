package fixrule_test

import (
	"fmt"
	"log"

	"fixrule"
)

// The paper's running example: φ1 detects that a tuple about China cannot
// have Shanghai or Hongkong as its capital and repairs it to Beijing.
func Example() {
	sch := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	rules, err := fixrule.ParseRulesWith(`
RULE phi1
  WHEN country = "China"
  IF capital IN ("Shanghai", "Hongkong")
  THEN capital = "Beijing"
`, sch)
	if err != nil {
		log.Fatal(err)
	}
	repairer, err := fixrule.NewRepairer(rules)
	if err != nil {
		log.Fatal(err)
	}
	fixed, steps := repairer.RepairTuple(
		fixrule.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}, fixrule.Linear)
	fmt.Println(fixed[2], len(steps))
	// Output: Beijing 1
}

// Consistency checking catches the paper's Example 8: with Tokyo among
// φ1's negative patterns, φ1 and φ3 disagree on the tuple
// (China, Tokyo, Tokyo, ICDE).
func ExampleCheckConsistency() {
	sch := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	rules, err := fixrule.ParseRulesWith(`
RULE phi1p
  WHEN country = "China"
  IF capital IN ("Shanghai", "Hongkong", "Tokyo")
  THEN capital = "Beijing"
RULE phi3
  WHEN capital = "Tokyo", city = "Tokyo", conf = "ICDE"
  IF country IN ("China")
  THEN country = "Japan"
`, sch)
	if err != nil {
		log.Fatal(err)
	}
	conflict := fixrule.CheckConsistency(rules)
	fmt.Println(conflict != nil)

	fixed, _, err := fixrule.Resolve(rules, fixrule.TrimNegatives)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fixrule.CheckConsistency(fixed) == nil)
	// Output:
	// true
	// true
}

// Implication analysis prunes redundant rules: a rule whose negative
// patterns are a subset of an existing rule's (same evidence, same fact)
// changes nothing.
func ExampleImplies() {
	sch := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	phi1, err := fixrule.NewRule("phi1", sch, map[string]string{"country": "China"},
		"capital", []string{"Shanghai", "Hongkong"}, "Beijing")
	if err != nil {
		log.Fatal(err)
	}
	rs, err := fixrule.RulesetOf(phi1)
	if err != nil {
		log.Fatal(err)
	}
	narrow, err := fixrule.NewRule("narrow", sch, map[string]string{"country": "China"},
		"capital", []string{"Shanghai"}, "Beijing")
	if err != nil {
		log.Fatal(err)
	}
	implied, err := fixrule.Implies(rs, narrow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(implied)
	// Output: true
}

// Rules can be mined from FD violations given ground truth (the paper's
// §7.1 procedure with the expert mechanised).
func ExampleMineRules() {
	sch := fixrule.NewSchema("KV", "k", "v")
	truth := fixrule.NewRelation(sch)
	dirty := fixrule.NewRelation(sch)
	for i := 0; i < 4; i++ {
		truth.Append(fixrule.Tuple{"a", "1"})
		dirty.Append(fixrule.Tuple{"a", "1"})
	}
	dirty.Row(0)[1] = "9"
	f, err := fixrule.ParseFD(sch, "k -> v")
	if err != nil {
		log.Fatal(err)
	}
	rules, err := fixrule.MineRules(truth, dirty, []*fixrule.FD{f}, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rules.Len())
	fmt.Println(rules.Rules()[0])
	// Output:
	// 1
	// r0001: (([k], [a]), (v, {9})) -> 1
}
