package server

import (
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
	"fixrule/internal/store"
	"fixrule/internal/trace"
)

// travelRuleset builds the Travel test ruleset with a configurable repair
// fact, so two "versions" of a tenant's rules are distinguishable by the
// bytes they produce.
func travelRuleset(fact string) *core.Ruleset {
	sch := schema.New("Travel", "name", "country", "capital", "city", "conf")
	return core.MustRuleset(
		core.MustNew("phi1", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai", "Hongkong"}, fact),
	)
}

// inconsistentRuleset fails the consistency check: an Example 8-style
// conflict where the same evidence supports contradictory facts.
func inconsistentRuleset() *core.Ruleset {
	sch := schema.New("Travel", "name", "country", "capital", "city", "conf")
	return core.MustRuleset(
		core.MustNew("phiA", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai"}, "Beijing"),
		core.MustNew("phiB", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai"}, "Nanjing"),
	)
}

// mapLoader is an in-memory TenantOptions.Loader with call counting, the
// instrument the singleflight and re-admission tests read.
type mapLoader struct {
	mu    sync.Mutex
	sets  map[string]*core.Ruleset
	calls map[string]int
	delay time.Duration
}

func newMapLoader(sets map[string]*core.Ruleset) *mapLoader {
	return &mapLoader{sets: sets, calls: make(map[string]int)}
}

func (l *mapLoader) load(tenant string) (*core.Ruleset, error) {
	l.mu.Lock()
	l.calls[tenant]++
	rs := l.sets[tenant]
	delay := l.delay
	l.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if rs == nil {
		return nil, fmt.Errorf("tenant %q not provisioned: %w", tenant, fs.ErrNotExist)
	}
	return rs, nil
}

func (l *mapLoader) set(tenant string, rs *core.Ruleset) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sets[tenant] = rs
}

func (l *mapLoader) callCount(tenant string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls[tenant]
}

// mustTestRepairer compiles the default Travel test ruleset.
func mustTestRepairer(t *testing.T) *repair.Repairer {
	t.Helper()
	rep, err := repair.NewRepairerChecked(travelRuleset("Beijing"))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// newLocalServer wraps a Server in an httptest listener with cleanup.
func newLocalServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

// newTenantServer builds a multi-tenant server over a map loader. The
// default engine serves travelRuleset("Beijing"), same as tenant "acme".
func newTenantServer(t *testing.T, cfg Config, opts TenantOptions, loader *mapLoader) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger
	}
	opts.Loader = loader.load
	cfg.Tenants = &opts
	rep, err := repair.NewRepairerChecked(travelRuleset("Beijing"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(rep, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

const ianTuple = `{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTenantRepairRoutes(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{
		"acme":   travelRuleset("Beijing"),
		"globex": travelRuleset("Peking"),
	})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	resp := postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if resp.StatusCode != 200 {
		t.Fatalf("/t/acme/repair = %d %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get(TenantHeader); got != "acme" {
		t.Errorf("%s = %q, want acme", TenantHeader, got)
	}
	if got := resp.Header.Get(VersionHeader); got != "1" {
		t.Errorf("%s = %q, want 1", VersionHeader, got)
	}
	if resp.Header.Get(HashHeader) == "" {
		t.Error("tenant response missing ruleset hash header")
	}
	if body := readBody(t, resp); !strings.Contains(body, "Beijing") {
		t.Errorf("acme repair body:\n%s", body)
	}

	// The sibling tenant serves its own ruleset, not acme's.
	resp = postJSON(t, srv.URL+"/t/globex/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("globex repair body:\n%s", body)
	}

	// GET surfaces: rules, rules/stats, stats.
	resp, err := http.Get(srv.URL + "/t/acme/rules")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); !strings.Contains(body, "RULE phi1") {
		t.Errorf("/t/acme/rules body:\n%s", body)
	}
	resp, err = http.Get(srv.URL + "/t/acme/rules/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Rules != 1 {
		t.Errorf("/t/acme/rules/stats rules = %d, want 1", stats.Rules)
	}
	resp, err = http.Get(srv.URL + "/t/acme/stats")
	if err != nil {
		t.Fatal(err)
	}
	var ts tenantStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ts.Tenant != "acme" || !ts.Cached || ts.RulesetVersion != 1 || ts.Tuples != 1 {
		t.Errorf("/t/acme/stats = %+v", ts)
	}
}

func TestTenantIDValidation(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	valid := []string{"a", "acme", "acme-2", "a_b", "0tenant", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !ValidTenantID(id) {
			t.Errorf("ValidTenantID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "ACME", "a.b", "a/b", "-lead", "_lead", "a b",
		"café", strings.Repeat("x", 65)}
	for _, id := range invalid {
		if ValidTenantID(id) {
			t.Errorf("ValidTenantID(%q) = true, want false", id)
		}
	}

	// Over the wire: malformed IDs answer 400 bad_tenant and never reach
	// the loader.
	for _, path := range []string{"/t/ACME/repair", "/t/-x/repair", "/t/" + strings.Repeat("y", 65) + "/repair"} {
		resp := postJSON(t, srv.URL+path, ianTuple)
		if code := decodeEnvelope(t, resp); resp.StatusCode != 400 || code != codeBadTenant {
			t.Errorf("%s = %d %s, want 400 bad_tenant", path, resp.StatusCode, code)
		}
	}
	if n := loader.callCount("ACME"); n != 0 {
		t.Errorf("loader called %d times for invalid tenant", n)
	}

	// Well-formed but unknown tenant: 404 unknown_tenant.
	resp := postJSON(t, srv.URL+"/t/ghost/repair", ianTuple)
	if code := decodeEnvelope(t, resp); resp.StatusCode != 404 || code != codeUnknownTenant {
		t.Errorf("/t/ghost/repair = %d %s, want 404 unknown_tenant", resp.StatusCode, code)
	}

	// Known tenant, unknown route: 404 unknown_route.
	resp = postJSON(t, srv.URL+"/t/acme/unknown", ianTuple)
	if code := decodeEnvelope(t, resp); resp.StatusCode != 404 || code != codeUnknownRoute {
		t.Errorf("/t/acme/unknown = %d %s, want 404 unknown_route", resp.StatusCode, code)
	}
}

// TestTenantByteIdentity is the core multi-tenant correctness claim: a
// request served through /t/{x}/ produces byte-identical output to the
// same request against a single-tenant server loaded with the same
// ruleset — for JSON repair, CSV streaming, columnar bodies, and explain.
func TestTenantByteIdentity(t *testing.T) {
	rep, err := repair.NewRepairerChecked(travelRuleset("Beijing"))
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(NewWithConfig(rep, Config{Logger: discardLogger}))
	defer single.Close()

	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, multi := newTenantServer(t, Config{}, TenantOptions{}, loader)

	do := func(srv, path, contentType, accept, body string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s = %d %s", path, resp.StatusCode, readBody(t, resp))
		}
		return readBody(t, resp), resp.Header.Get("Content-Type")
	}

	jsonBody := `{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"],` +
		`["Amy","China","Hongkong","Paris","VLDB"],` +
		`["Bob","Japan","Tokyo","Tokyo","SIGMOD"]]}`
	csvBody := "name,country,capital,city,conf\n" +
		"Ian,China,Shanghai,Hongkong,ICDE\n" +
		"Amy,China,Hongkong,Paris,VLDB\n" +
		"Bob,Japan,Tokyo,Tokyo,SIGMOD\n"

	sj, _ := do(single.URL, "/repair", "application/json", "", jsonBody)
	mj, _ := do(multi.URL, "/t/acme/repair", "application/json", "", jsonBody)
	if sj != mj {
		t.Errorf("JSON repair differs:\nsingle: %s\ntenant: %s", sj, mj)
	}

	sc, _ := do(single.URL, "/repair/csv", "text/csv", "", csvBody)
	mc, _ := do(multi.URL, "/t/acme/repair/csv", "text/csv", "", csvBody)
	if sc != mc {
		t.Errorf("CSV repair differs:\nsingle: %q\ntenant: %q", sc, mc)
	}

	// Columnar out (CSV in), then columnar in, columnar out.
	sf, sct := do(single.URL, "/repair/csv", "text/csv", store.ColumnarContentType, csvBody)
	mf, mct := do(multi.URL, "/t/acme/repair/csv", "text/csv", store.ColumnarContentType, csvBody)
	if sct != store.ColumnarContentType || mct != store.ColumnarContentType {
		t.Fatalf("columnar content types = %q, %q", sct, mct)
	}
	if sf != mf {
		t.Errorf("columnar output differs (%d vs %d bytes)", len(sf), len(mf))
	}
	sr, _ := do(single.URL, "/repair/csv", store.ColumnarContentType, store.ColumnarContentType, sf)
	mr, _ := do(multi.URL, "/t/acme/repair/csv", store.ColumnarContentType, store.ColumnarContentType, mf)
	if sr != mr {
		t.Errorf("columnar round-trip differs (%d vs %d bytes)", len(sr), len(mr))
	}

	se, _ := do(single.URL, "/explain", "application/json",
		"", `{"tuple": ["Ian","China","Shanghai","Hongkong","ICDE"]}`)
	me, _ := do(multi.URL, "/t/acme/explain", "application/json",
		"", `{"tuple": ["Ian","China","Shanghai","Hongkong","ICDE"]}`)
	if se != me {
		t.Errorf("explain differs:\nsingle: %s\ntenant: %s", se, me)
	}
}

func TestTenantReload(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	// Warm the tenant on version 1.
	resp := postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Beijing") {
		t.Fatalf("pre-reload body:\n%s", body)
	}

	// Hot deploy version 2 and verify behaviour changed.
	loader.set("acme", travelRuleset("Peking"))
	resp = postJSON(t, srv.URL+"/t/acme/reload", "")
	if resp.StatusCode != 200 {
		t.Fatalf("/t/acme/reload = %d %s", resp.StatusCode, readBody(t, resp))
	}
	if v := resp.Header.Get(VersionHeader); v != "2" {
		t.Errorf("reload version header = %q, want 2", v)
	}
	var reloaded struct {
		Tenant  string `json:"tenant"`
		Version int64  `json:"ruleset_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reloaded); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reloaded.Tenant != "acme" || reloaded.Version != 2 {
		t.Errorf("reload response = %+v", reloaded)
	}
	resp = postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if v := resp.Header.Get(VersionHeader); v != "2" {
		t.Errorf("post-reload version header = %q, want 2", v)
	}
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("post-reload body:\n%s", body)
	}

	// An inconsistent replacement is rejected 422 and the served engine
	// stays on version 2.
	loader.set("acme", inconsistentRuleset())
	resp = postJSON(t, srv.URL+"/t/acme/reload", "")
	if code := decodeEnvelope(t, resp); resp.StatusCode != 422 || code != codeInconsistent {
		t.Errorf("inconsistent reload = %d %s, want 422 %s", resp.StatusCode, code, codeInconsistent)
	}
	resp = postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("failed reload changed the served engine:\n%s", body)
	}

	// Reloading an unprovisioned tenant is 404; GET on reload is 405.
	resp = postJSON(t, srv.URL+"/t/ghost/reload", "")
	if code := decodeEnvelope(t, resp); resp.StatusCode != 404 || code != codeUnknownTenant {
		t.Errorf("/t/ghost/reload = %d %s", resp.StatusCode, code)
	}
	getResp, err := http.Get(srv.URL + "/t/acme/reload")
	if err != nil {
		t.Fatal(err)
	}
	if code := decodeEnvelope(t, getResp); getResp.StatusCode != 405 || code != codeMethodNotAllowed {
		t.Errorf("GET /t/acme/reload = %d %s", getResp.StatusCode, code)
	}
}

// TestTenantQuota holds one slow streaming request inside tenant acme's
// quota of 1 and asserts the next acme request sheds with 503
// tenant_overloaded — while a sibling tenant, and the global limiter,
// keep serving.
func TestTenantQuota(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{
		"acme":   travelRuleset("Beijing"),
		"globex": travelRuleset("Peking"),
	})
	s, srv := newTenantServer(t, Config{MaxInFlight: 8}, TenantOptions{MaxInFlight: 1}, loader)

	pr, pw := io.Pipe()
	done := make(chan string, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/t/acme/repair/csv", "text/csv", pr)
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- string(b)
	}()
	io.WriteString(pw, "name,country,capital,city,conf\nIan,China,Shanghai,Hongkong,ICDE\n")

	// Wait until the slow request holds acme's semaphore slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e, err := s.tenants.get("acme"); err == nil && len(e.sem) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the tenant semaphore")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if resp.StatusCode != 503 {
		t.Fatalf("second acme request = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
	if code := decodeEnvelope(t, resp); code != codeTenantOverloaded {
		t.Errorf("shed code = %s, want %s", code, codeTenantOverloaded)
	}

	// The sibling tenant is untouched by acme's saturation.
	resp = postJSON(t, srv.URL+"/t/globex/repair", ianTuple)
	if resp.StatusCode != 200 {
		t.Errorf("globex during acme saturation = %d, want 200", resp.StatusCode)
	}
	readBody(t, resp)

	pw.Close()
	if out := <-done; !strings.Contains(out, "Beijing") {
		t.Errorf("slow stream result: %q", out)
	}
}

// TestTenantTraceIsolation is the regression test for tenant-scoped
// observability: tenant A's traces are invisible to tenant B, both in the
// listing and — without leaking existence — in the drill-down.
func TestTenantTraceIsolation(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{
		"alpha": travelRuleset("Beijing"),
		"beta":  travelRuleset("Peking"),
	})
	tracer := trace.New(trace.Options{SampleRate: 1})
	_, srv := newTenantServer(t, Config{Tracer: tracer}, TenantOptions{}, loader)

	resp := postJSON(t, srv.URL+"/t/alpha/repair", ianTuple)
	readBody(t, resp)
	tp := resp.Header.Get("traceparent")
	if len(tp) != 55 {
		t.Fatalf("traceparent = %q", tp)
	}
	traceID := tp[3:35]

	listOf := func(tenant string) string {
		resp, err := http.Get(srv.URL + "/t/" + tenant + "/debug/traces")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("/t/%s/debug/traces = %d", tenant, resp.StatusCode)
		}
		return readBody(t, resp)
	}
	if body := listOf("alpha"); !strings.Contains(body, traceID) {
		t.Errorf("alpha's own trace missing from its listing:\n%s", body)
	}
	if body := listOf("beta"); strings.Contains(body, traceID) {
		t.Errorf("alpha's trace leaked into beta's listing:\n%s", body)
	}

	// Drill-down: owner sees it; the other tenant gets the same 404 body a
	// nonexistent trace gets, so existence is not confirmed either way.
	resp, err := http.Get(srv.URL + "/t/alpha/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("owner drill-down = %d", resp.StatusCode)
	}
	if body := readBody(t, resp); !strings.Contains(body, traceID) {
		t.Errorf("owner drill-down body:\n%s", body)
	}
	otherResp, err := http.Get(srv.URL + "/t/beta/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	otherBody := readBody(t, otherResp)
	missingResp, err := http.Get(srv.URL + "/t/beta/debug/traces/" + strings.Repeat("0", 32))
	if err != nil {
		t.Fatal(err)
	}
	missingBody := readBody(t, missingResp)
	if otherResp.StatusCode != 404 || missingResp.StatusCode != 404 {
		t.Fatalf("cross-tenant = %d, missing = %d, want 404 for both",
			otherResp.StatusCode, missingResp.StatusCode)
	}
	// Strip the per-request correlation IDs before comparing: the bodies
	// must otherwise be identical, or the difference leaks existence.
	scrub := func(s string) string {
		var env errorEnvelope
		if err := json.Unmarshal([]byte(s), &env); err != nil {
			t.Fatalf("404 body is not an envelope: %v", err)
		}
		env.Error.RequestID, env.Error.TraceID = "", ""
		out, _ := json.Marshal(env)
		return string(out)
	}
	if scrub(otherBody) != scrub(missingBody) {
		t.Errorf("cross-tenant 404 differs from missing-trace 404:\n%s\nvs\n%s",
			otherBody, missingBody)
	}
}

// TestTenantStatsIsolation asserts /t/{x}/stats reports only that tenant's
// counters, and the untenanted /stats and /debug/traces surfaces still
// work on a multi-tenant server.
func TestTenantStatsIsolation(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{
		"alpha": travelRuleset("Beijing"),
		"beta":  travelRuleset("Peking"),
	})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	for i := 0; i < 3; i++ {
		readBody(t, postJSON(t, srv.URL+"/t/alpha/repair", ianTuple))
	}
	readBody(t, postJSON(t, srv.URL+"/t/beta/repair", ianTuple))

	stats := func(tenant string) tenantStatsResponse {
		resp, err := http.Get(srv.URL + "/t/" + tenant + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var ts tenantStatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return ts
	}
	a, b := stats("alpha"), stats("beta")
	if a.Tenant != "alpha" || a.Tuples != 3 || a.TuplesRepaired != 3 {
		t.Errorf("alpha stats = %+v", a)
	}
	if b.Tenant != "beta" || b.Tuples != 1 {
		t.Errorf("beta stats counted another tenant's traffic: %+v", b)
	}

	// The per-tenant metric series carry the tenant label and separate
	// values.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readBody(t, resp)
	if !strings.Contains(metrics, `fixserve_tenant_tuples_total{tenant="alpha"} 3`) ||
		!strings.Contains(metrics, `fixserve_tenant_tuples_total{tenant="beta"} 1`) {
		t.Errorf("per-tenant tuple series missing:\n%s", metrics)
	}
	if !strings.Contains(metrics, `fixserve_tenant_cells_changed_total{tenant="alpha",attr="capital"} 3`) {
		t.Errorf("per-tenant per-attribute series missing:\n%s", metrics)
	}
}

func TestTenantBodyCap(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, srv := newTenantServer(t, Config{}, TenantOptions{MaxBodyBytes: 256}, loader)

	big := `{"tuples": [["` + strings.Repeat("x", 1024) + `","China","Shanghai","Hongkong","ICDE"]]}`
	resp := postJSON(t, srv.URL+"/t/acme/repair", big)
	if code := decodeEnvelope(t, resp); resp.StatusCode != 413 || code != codeBodyTooLarge {
		t.Errorf("oversized tenant body = %d %s, want 413 %s", resp.StatusCode, code, codeBodyTooLarge)
	}
}

// TestTenantOnlyWorker exercises the worker topology: tenant routes serve,
// the legacy single-tenant repair surface answers 404 no_default_ruleset,
// and the probe endpoints stay alive.
func TestTenantOnlyWorker(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	s, err := NewTenantOnly(Config{
		Logger:  discardLogger,
		Tenants: &TenantOptions{Loader: loader.load},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if resp.StatusCode != 200 {
		t.Fatalf("worker /t/acme/repair = %d", resp.StatusCode)
	}
	if body := readBody(t, resp); !strings.Contains(body, "Beijing") {
		t.Errorf("worker repair body:\n%s", body)
	}

	for _, path := range []string{"/repair", "/repair/csv", "/explain", "/rules", "/rules/stats", "/reload"} {
		resp := postJSON(t, srv.URL+path, ianTuple)
		if code := decodeEnvelope(t, resp); resp.StatusCode != 404 || code != codeNoDefaultRuleset {
			t.Errorf("worker %s = %d %s, want 404 %s", path, resp.StatusCode, code, codeNoDefaultRuleset)
		}
	}
	for _, path := range []string{"/healthz", "/metrics", "/stats", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("worker %s = %d, want 200", path, resp.StatusCode)
		}
		readBody(t, resp)
	}

	// NewTenantOnly without a loader is a configuration error.
	if _, err := NewTenantOnly(Config{}); err == nil {
		t.Error("NewTenantOnly without loader succeeded")
	}
}

// TestInvalidateTenants covers the SIGHUP path: every cached engine drops,
// the next request recompiles through the loader, and the version keeps
// climbing.
func TestInvalidateTenants(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	s, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	readBody(t, postJSON(t, srv.URL+"/t/acme/repair", ianTuple))
	if n := s.InvalidateTenants(); n != 1 {
		t.Errorf("InvalidateTenants = %d, want 1", n)
	}
	if s.tenants.cached("acme") {
		t.Error("acme still cached after invalidation")
	}
	loader.set("acme", travelRuleset("Peking"))
	resp := postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if v := resp.Header.Get(VersionHeader); v != "2" {
		t.Errorf("post-invalidate version = %q, want 2", v)
	}
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("post-invalidate body:\n%s", body)
	}
	if loader.callCount("acme") != 2 {
		t.Errorf("loader calls = %d, want 2", loader.callCount("acme"))
	}

	// A single-tenant server reports 0 and false.
	rep, _ := repair.NewRepairerChecked(travelRuleset("Beijing"))
	plain := NewWithConfig(rep, Config{Logger: discardLogger})
	if plain.TenantEnabled() || plain.InvalidateTenants() != 0 {
		t.Error("single-tenant server claims tenant state")
	}
}

// TestTenantCSVStreamUsesOwnRuleset drives the streaming path through a
// tenant route with a slow body and a concurrent reload, asserting the
// stream is served wholly by the engine it snapshotted.
func TestTenantStreamSnapshotSurvivesReload(t *testing.T) {
	loader := newMapLoader(map[string]*core.Ruleset{"acme": travelRuleset("Beijing")})
	_, srv := newTenantServer(t, Config{}, TenantOptions{}, loader)

	pr, pw := io.Pipe()
	done := make(chan string, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/t/acme/repair/csv", "text/csv", pr)
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- string(b)
	}()
	io.WriteString(pw, "name,country,capital,city,conf\nIan,China,Shanghai,Hongkong,ICDE\n")
	time.Sleep(50 * time.Millisecond) // let the handler snapshot version 1

	loader.set("acme", travelRuleset("Peking"))
	resp := postJSON(t, srv.URL+"/t/acme/reload", "")
	if resp.StatusCode != 200 {
		t.Fatalf("mid-stream reload = %d", resp.StatusCode)
	}
	readBody(t, resp)

	// Rows sent after the reload must still repair with the snapshotted
	// version-1 engine.
	io.WriteString(pw, "Amy,China,Hongkong,Paris,VLDB\n")
	pw.Close()
	out := <-done
	if !strings.Contains(out, "Ian,China,Beijing") || !strings.Contains(out, "Amy,China,Beijing") {
		t.Errorf("in-flight stream mixed ruleset versions:\n%s", out)
	}
	if strings.Contains(out, "Peking") {
		t.Errorf("in-flight stream served by post-reload engine:\n%s", out)
	}

	// A fresh request sees version 2.
	resp = postJSON(t, srv.URL+"/t/acme/repair", ianTuple)
	if body := readBody(t, resp); !strings.Contains(body, "Peking") {
		t.Errorf("post-reload request body:\n%s", body)
	}
}
