package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/repair"
)

// TestReloadRepairRace hammers /repair from N goroutines while M
// goroutines alternate the ruleset through /reload, and asserts every
// single response is consistent with exactly one ruleset version: the
// version header and the repaired value must agree. Reloads are
// serialised by the server, so version n was installed by loader call
// n-1: odd versions (1, 3, ...) serve ruleset A ("Beijing"), even
// versions serve ruleset B ("Peking"). Run under -race in CI.
func TestReloadRepairRace(t *testing.T) {
	rsA, rsB := reloadPair()
	var calls atomic.Int64
	loader := func() (*core.Ruleset, error) {
		if calls.Add(1)%2 == 1 {
			return rsB, nil // first reload installs version 2
		}
		return rsA, nil
	}
	repA, err := repair.NewRepairerChecked(rsA)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(repA, Config{Loader: loader, Logger: discardLogger, MaxInFlight: 128})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := srv.Client()

	const (
		repairers = 8
		reqEach   = 120
		reloaders = 2
		relEach   = 40
	)
	errc := make(chan error, repairers*reqEach+reloaders*relEach)
	var wg sync.WaitGroup
	for g := 0; g < repairers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := `{"tuples": [["Ian","China","Shanghai","x","y"]]}`
			for i := 0; i < reqEach; i++ {
				resp, err := client.Post(srv.URL+"/repair", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var out repairResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("repair status %d", resp.StatusCode)
					continue
				}
				if decErr != nil {
					errc <- decErr
					continue
				}
				v, err := strconv.Atoi(resp.Header.Get(VersionHeader))
				if err != nil {
					errc <- fmt.Errorf("bad version header %q", resp.Header.Get(VersionHeader))
					continue
				}
				want := "Beijing"
				if v%2 == 0 {
					want = "Peking"
				}
				if got := out.Repaired[0].Tuple[2]; got != want {
					errc <- fmt.Errorf("version %d answered %q, want %q", v, got, want)
				}
			}
		}()
	}
	for g := 0; g < reloaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < relEach; i++ {
				resp, err := client.Post(srv.URL+"/reload", "", nil)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reload status %d", resp.StatusCode)
				}
			}
		}()
	}
	// Scrape /metrics and /stats concurrently too: the registry and the
	// engine snapshot must stay coherent under reload.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, path := range []string{"/metrics", "/stats"} {
					resp, err := client.Get(srv.URL + path)
					if err != nil {
						errc <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("%s status %d", path, resp.StatusCode)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	bad := 0
	for err := range errc {
		bad++
		if bad <= 10 {
			t.Error(err)
		}
	}
	if bad > 10 {
		t.Errorf("... and %d more errors", bad-10)
	}

	// Every loader call installed exactly one version.
	wantVersion := calls.Load() + 1
	if v := s.eng.Load().version; v != wantVersion {
		t.Errorf("final version = %d, want %d (loader calls %d)", v, wantVersion, calls.Load())
	}
}
