package schema

import "fmt"

// Project returns a new relation containing the given attributes (in the
// given order) of every row. Duplicates are kept; use Distinct to collapse
// them. The relation name is preserved.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: Project with no attributes")
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("schema: Project: unknown attribute %q", a)
		}
		idx[i] = j
	}
	out := NewRelation(New(r.schema.Name(), attrs...))
	for _, t := range r.rows {
		row := make(Tuple, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Append(row)
	}
	return out, nil
}

// Select returns a new relation with the rows for which pred returns true.
// The schema is shared; rows are copied.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.rows {
		if pred(t) {
			out.Append(t.Clone())
		}
	}
	return out
}

// Distinct returns a new relation with duplicate rows removed, keeping the
// first occurrence of each.
func (r *Relation) Distinct() *Relation {
	out := NewRelation(r.schema)
	seen := make(map[string]struct{}, len(r.rows))
	for _, t := range r.rows {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Append(t.Clone())
	}
	return out
}

// Sample returns a new relation with the rows at the given indices, in
// order. Out-of-range indices are an error.
func (r *Relation) Sample(indices []int) (*Relation, error) {
	out := NewRelation(r.schema)
	for _, i := range indices {
		if i < 0 || i >= len(r.rows) {
			return nil, fmt.Errorf("schema: Sample: index %d out of range [0,%d)", i, len(r.rows))
		}
		out.Append(r.rows[i].Clone())
	}
	return out, nil
}
