package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fixrule/internal/repair"
	"fixrule/internal/repairlog"
	"fixrule/internal/schema"
	"fixrule/internal/trace"
)

// sampledTracer builds a tracer that samples every request, so tests can
// rely on their traces landing in the ring.
func sampledTracer() *trace.Tracer {
	return trace.New(trace.Options{SampleRate: 1})
}

// TestResponseCarriesRequestID: every response carries X-Request-Id and a
// valid traceparent, and consecutive requests get distinct IDs.
func TestResponseCarriesRequestID(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(RequestIDHeader)
		if id == "" {
			t.Fatal("response missing X-Request-Id")
		}
		if seen[id] {
			t.Fatalf("request ID %q reused", id)
		}
		seen[id] = true
		if _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
			t.Errorf("response traceparent %q invalid", resp.Header.Get("traceparent"))
		}
	}
}

// TestErrorEnvelopeCarriesRequestID is the regression test for correlating
// operational failures with logs: the 413 and 503 envelopes must carry the
// same request ID the response header (and log line) has.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	decode := func(t *testing.T, resp *http.Response) errorDetail {
		t.Helper()
		defer resp.Body.Close()
		var env errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decoding envelope: %v", err)
		}
		return env.Error
	}
	check := func(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		d := decode(t, resp)
		if d.Code != wantCode {
			t.Fatalf("code = %q, want %q", d.Code, wantCode)
		}
		if d.RequestID == "" || d.RequestID != resp.Header.Get(RequestIDHeader) {
			t.Errorf("envelope request_id = %q, header = %q",
				d.RequestID, resp.Header.Get(RequestIDHeader))
		}
		sc, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
		if !ok {
			t.Fatalf("response traceparent %q invalid", resp.Header.Get("traceparent"))
		}
		if d.TraceID != sc.TraceID.String() {
			t.Errorf("envelope trace_id = %q, traceparent has %q", d.TraceID, sc.TraceID)
		}
	}

	t.Run("413", func(t *testing.T) {
		_, srv := newOpsServer(t, Config{MaxBodyBytes: 64})
		big := `{"tuples": [["` + strings.Repeat("x", 200) + `","a","b","c","d"]]}`
		resp, err := http.Post(srv.URL+"/repair", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp, http.StatusRequestEntityTooLarge, codeBodyTooLarge)
	})
	t.Run("503", func(t *testing.T) {
		s, srv := newOpsServer(t, Config{MaxInFlight: 1})
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		resp, err := http.Post(srv.URL+"/repair", "application/json",
			strings.NewReader(`{"tuples": []}`))
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp, http.StatusServiceUnavailable, codeOverloaded)
	})
}

// syncBuffer makes a bytes.Buffer safe to share between the server's log
// goroutines and the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogCorrelation: the structured request log line carries the
// same request_id and trace_id the client saw in its error envelope, at
// Warn for a 4xx.
func TestRequestLogCorrelation(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, srv := newOpsServer(t, Config{Logger: logger, MaxBodyBytes: 64})
	big := `{"tuples": [["` + strings.Repeat("x", 200) + `","a","b","c","d"]]}`
	resp, err := http.Post(srv.URL+"/repair", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The log line is written after the handler returns; poll briefly.
	type logLine struct {
		Level     string `json:"level"`
		Msg       string `json:"msg"`
		Endpoint  string `json:"endpoint"`
		Status    int    `json:"status"`
		RequestID string `json:"request_id"`
		TraceID   string `json:"trace_id"`
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var found *logLine
		for _, line := range strings.Split(buf.String(), "\n") {
			if line == "" {
				continue
			}
			var ll logLine
			if err := json.Unmarshal([]byte(line), &ll); err != nil {
				continue
			}
			if ll.Msg == "request" && ll.Endpoint == "/repair" {
				found = &ll
				break
			}
		}
		if found != nil {
			if found.Status != http.StatusRequestEntityTooLarge {
				t.Errorf("logged status = %d, want 413", found.Status)
			}
			if found.Level != "WARN" {
				t.Errorf("4xx logged at %s, want WARN", found.Level)
			}
			if found.RequestID != env.Error.RequestID {
				t.Errorf("log request_id = %q, envelope has %q", found.RequestID, env.Error.RequestID)
			}
			if found.TraceID != env.Error.TraceID {
				t.Errorf("log trace_id = %q, envelope has %q", found.TraceID, env.Error.TraceID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("request log line never appeared; log:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// travelCSV builds a CSV over the ops fixture schema with deterministic
// dirty rows (the Example 1 errors), returning the raw CSV and the rows.
func travelCSV(n int) (string, []schema.Tuple) {
	var b strings.Builder
	b.WriteString("name,country,capital,city,conf\n")
	rows := make([]schema.Tuple, 0, n)
	for i := 0; i < n; i++ {
		row := schema.Tuple{fmt.Sprintf("p%d", i), "China", "Beijing", "Shanghai", "ICDE"}
		if i%7 == 1 {
			row = schema.Tuple{fmt.Sprintf("p%d", i), "China", "Shanghai", "Hongkong", "ICDE"}
		}
		rows = append(rows, row)
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String(), rows
}

// chaseStepsToLog converts the chase.step events of a trace detail into
// repairlog entries, in the order the events appear.
func chaseStepsToLog(t *testing.T, detail traceDetail) []repairlog.Entry {
	t.Helper()
	var entries []repairlog.Entry
	for _, sp := range detail.Spans {
		for _, ev := range sp.Events {
			if ev.Name != "chase.step" {
				continue
			}
			attrs := map[string]string{}
			for _, a := range ev.Attrs {
				attrs[a.Key] = a.Value
			}
			row, err := strconv.Atoi(attrs["row"])
			if err != nil {
				t.Fatalf("chase.step row = %q: %v", attrs["row"], err)
			}
			entries = append(entries, repairlog.Entry{
				Row: row, Attr: attrs["attr"], Old: attrs["from"], New: attrs["to"],
			})
		}
	}
	return entries
}

// TestDebugTracesChaseStepsMatchRepairlog is the acceptance property: for a
// sampled /repair/csv request, the chase steps recorded on its trace in
// /debug/traces are exactly the repairlog entries a batch repair of the
// same data produces — same rows, same attributes, same old/new strings,
// same order. Checked for the sequential and the parallel stream.
func TestDebugTracesChaseStepsMatchRepairlog(t *testing.T) {
	csvIn, rows := travelCSV(200)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s, srv := newOpsServer(t, Config{
				Tracer:        sampledTracer(),
				StreamWorkers: workers,
			})
			resp, err := http.Post(srv.URL+"/repair/csv?algorithm=chase", "text/csv",
				strings.NewReader(csvIn))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			sc, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
			if !ok {
				t.Fatalf("response traceparent %q invalid", resp.Header.Get("traceparent"))
			}

			resp, err = http.Get(srv.URL + "/debug/traces/" + sc.TraceID.String())
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("trace lookup status = %d, body %s", resp.StatusCode, body)
			}
			var detail traceDetail
			if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			got := chaseStepsToLog(t, detail)

			rel := schema.FromRows(s.Ruleset().Schema(), rows)
			res := s.eng.Load().rep.RepairRelation(rel, repair.Chase)
			want := repairlog.FromResult(rel, res.Relation, res.Changed)
			if len(want) == 0 {
				t.Fatal("fixture produced no repairs; test is vacuous")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("chase steps diverge from repairlog:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

// TestDebugTracesList: the listing surfaces sampled traces newest-first
// with request IDs, honours ?limit, and unknown IDs 404 with the stable
// code.
func TestDebugTracesList(t *testing.T) {
	_, srv := newOpsServer(t, Config{Tracer: sampledTracer()})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/repair", "application/json",
			strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/debug/traces?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []traceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list.Traces))
	}
	for _, tr := range list.Traces {
		if tr.TraceID == "" || tr.RequestID == "" || tr.Endpoint != "/repair" {
			t.Errorf("summary incomplete: %+v", tr)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}
	if code := decodeEnvelope(t, resp); code != codeTraceNotFound {
		t.Errorf("code = %q", code)
	}
}

// TestTraceparentPropagation: an incoming sampled traceparent is adopted —
// the request joins the caller's trace and the trace is retained under the
// caller's ID.
func TestTraceparentPropagation(t *testing.T) {
	_, srv := newOpsServer(t, Config{}) // sampling off: the decision must come from the header
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/repair",
		strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sc, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("response traceparent = %q, want caller's trace ID", resp.Header.Get("traceparent"))
	}
	resp, err = http.Get(srv.URL + "/debug/traces/0af7651916cd43dd8448eb211c80319c")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inherited sampled trace not retained: status %d", resp.StatusCode)
	}
}

// TestMetricsExemplars: a sampled request attaches its trace ID to the
// latency bucket it landed in, but the exemplar is only rendered for
// scrapers that negotiate application/openmetrics-text — a plain 0.0.4
// scrape must stay parseable (no `#` after any sample value).
func TestMetricsExemplars(t *testing.T) {
	_, srv := newOpsServer(t, Config{Tracer: sampledTracer()})
	resp, err := http.Post(srv.URL+"/repair", "application/json",
		strings.NewReader(`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	scrape := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body), resp.Header.Get("Content-Type")
	}

	// Prometheus's default Accept header negotiates OpenMetrics.
	om, ct := scrape("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics scrape Content-Type = %q", ct)
	}
	idx := strings.Index(om, "fixserve_request_duration_seconds_bucket")
	if idx < 0 {
		t.Fatal("latency buckets missing from exposition")
	}
	if !strings.Contains(om[idx:], `# {trace_id="`) {
		t.Error("no exemplar on any latency bucket after a sampled request")
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics exposition must terminate with # EOF")
	}

	// A plain scrape gets the classic format with no exemplars at all.
	plain, ct := scrape("")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("plain scrape Content-Type = %q", ct)
	}
	if strings.Contains(plain, "trace_id") {
		t.Error("exemplar leaked into the 0.0.4 exposition")
	}
	if strings.Contains(plain, "# EOF") {
		t.Error("# EOF is OpenMetrics-only")
	}
}

// TestPerAttrSeries: repairs and OOV cells surface as per-attribute
// labeled counters, and the build-info gauge is present.
func TestPerAttrSeries(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	// One dirty tuple (capital and city repaired) and one OOV country.
	for _, body := range []string{
		`{"tuples": [["Ian","China","Shanghai","Hongkong","ICDE"]]}`,
		`{"tuples": [["Eve","Chine","Beijing","Shanghai","ICDE"]]}`,
	} {
		resp, err := http.Post(srv.URL+"/repair", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`fixserve_cells_changed_total{attr="capital"} 1`,
		`fixserve_cells_changed_total{attr="city"} 1`,
		`fixserve_cells_changed_total{attr="country"} 0`,
		`fixserve_cells_oov_total{attr="country"} 1`,
		`fixserve_build_info{version=`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPprofGating: /debug/pprof/ is absent by default and served when the
// operator enables it.
func TestPprofGating(t *testing.T) {
	_, srv := newOpsServer(t, Config{})
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without opt-in: status %d", resp.StatusCode)
	}
	_, srv = newOpsServer(t, Config{EnablePprof: true})
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled but status = %d", resp.StatusCode)
	}
}
