package analysis_test

import (
	"testing"

	"fixrule/internal/analysis/analysistest"
	"fixrule/internal/analysis/atomicpad"
	"fixrule/internal/analysis/ctxpoll"
	"fixrule/internal/analysis/detrange"
	"fixrule/internal/analysis/errcode"
	"fixrule/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotpath", hotpathalloc.Analyzer)
}

func TestAtomicpad(t *testing.T) {
	analysistest.Run(t, "testdata/src/padded", atomicpad.Analyzer)
}

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxpollfix", ctxpoll.Analyzer)
}

func TestErrcode(t *testing.T) {
	analysistest.Run(t, "testdata/src/errcodefix", errcode.Analyzer)
}

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrangefix", detrange.Analyzer)
}
