// Package fddisc discovers functional dependencies from data, in the
// levelwise style of TANE (Huhtala et al., The Computer Journal 1999).
// The paper's rule-generation pipeline "start[s] with known dependencies";
// discovery removes that last manual input, completing the fully
// autonomous chain envisioned by its Section 8: dirty data → discovered
// FDs → discovered fixing rules → repair.
//
// The search enumerates LHS candidates level by level up to MaxLHS
// attributes and tests X → A with partition counting: the FD holds exactly
// when the number of distinct X values equals the number of distinct
// X ∪ {A} values. For dirty data an approximate criterion is used: the g3
// error — the minimum fraction of tuples to delete for the FD to hold,
// computed as 1 − (Σ over X-groups of the dominant A-count) / |rel| — must
// not exceed MaxError. Discovered FDs are minimal: once X → A is accepted,
// no superset of X is reported for A.
package fddisc

import (
	"sort"
	"strings"

	"fixrule/internal/fd"
	"fixrule/internal/schema"
)

// Config tunes discovery.
type Config struct {
	// MaxLHS bounds the determinant size (default 2). Level l costs
	// O(C(|R|, l) · |R| · n), so keep this small for wide schemas.
	MaxLHS int
	// MaxError is the highest admissible g3 error in [0, 1) (default 0:
	// exact FDs only). Set it around the expected noise rate to discover
	// FDs from dirty data.
	MaxError float64
	// MinDistinct rejects trivial determinants: an LHS must take at least
	// this many distinct values (default 2), else everything trivially
	// "depends" on it within one giant group.
	MinDistinct int
}

func (c Config) maxLHS() int {
	if c.MaxLHS > 0 {
		return c.MaxLHS
	}
	return 2
}

func (c Config) minDistinct() int {
	if c.MinDistinct > 0 {
		return c.MinDistinct
	}
	return 2
}

// Discovered is one discovered dependency with its measured error.
type Discovered struct {
	FD *fd.FD
	// Error is the g3 error on the input relation (0 for exact FDs).
	Error float64
}

// Discover returns the minimal FDs of rel under the configuration, sorted
// by determinant then dependent for determinism. RHS attributes with the
// same LHS are reported as separate single-attribute FDs; use Merge to
// combine them into the paper's X → Y1, Y2, ... notation.
func Discover(rel *schema.Relation, cfg Config) ([]Discovered, error) {
	sch := rel.Schema()
	n := rel.Len()
	arity := sch.Arity()
	if n == 0 {
		return nil, nil
	}

	// groupKeys materialises the group key of every row for an attribute
	// set, encoded as joined values.
	groupKeys := func(attrs []int) []string {
		keys := make([]string, n)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.Reset()
			row := rel.Row(i)
			for _, a := range attrs {
				b.WriteString(row[a])
				b.WriteByte('\x1f')
			}
			keys[i] = b.String()
		}
		return keys
	}

	// g3 error of X → A given X's group keys.
	g3 := func(xKeys []string, attr int) (float64, int) {
		counts := make(map[string]map[string]int)
		for i := 0; i < n; i++ {
			m, ok := counts[xKeys[i]]
			if !ok {
				m = make(map[string]int)
				counts[xKeys[i]] = m
			}
			m[rel.Row(i)[attr]]++
		}
		kept := 0
		for _, m := range counts {
			best := 0
			for _, c := range m {
				if c > best {
					best = c
				}
			}
			kept += best
		}
		return 1 - float64(kept)/float64(n), len(counts)
	}

	// accepted[A] collects the minimal determinants found for A so far, as
	// sorted attr-index slices.
	accepted := make([][][]int, arity)
	isSuperset := func(attr int, x []int) bool {
		for _, det := range accepted[attr] {
			if containsAll(x, det) {
				return true
			}
		}
		return false
	}

	var out []Discovered
	for _, x := range combinations(arity, cfg.maxLHS()) {
		xKeys := groupKeys(x)
		distinct := countDistinct(xKeys)
		if distinct < cfg.minDistinct() {
			continue
		}
		for a := 0; a < arity; a++ {
			if containsIdx(x, a) || isSuperset(a, x) {
				continue
			}
			err, _ := g3(xKeys, a)
			if err <= cfg.MaxError {
				lhs := make([]string, len(x))
				for i, idx := range x {
					lhs[i] = sch.Attrs()[idx]
				}
				f, ferr := fd.New(sch, lhs, []string{sch.Attrs()[a]})
				if ferr != nil {
					return nil, ferr
				}
				accepted[a] = append(accepted[a], x)
				out = append(out, Discovered{FD: f, Error: err})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li := strings.Join(out[i].FD.LHS(), ",")
		lj := strings.Join(out[j].FD.LHS(), ",")
		if li != lj {
			return li < lj
		}
		return out[i].FD.RHS()[0] < out[j].FD.RHS()[0]
	})
	return out, nil
}

// Merge combines discovered FDs sharing a determinant into one FD with a
// multi-attribute RHS, preserving determinant order.
func Merge(ds []Discovered) []*fd.FD {
	type group struct {
		lhs []string
		rhs []string
	}
	byKey := map[string]*group{}
	var order []string
	for _, d := range ds {
		k := strings.Join(d.FD.LHS(), "\x1f")
		g, ok := byKey[k]
		if !ok {
			g = &group{lhs: d.FD.LHS()}
			byKey[k] = g
			order = append(order, k)
		}
		g.rhs = append(g.rhs, d.FD.RHS()...)
	}
	var out []*fd.FD
	for _, k := range order {
		g := byKey[k]
		sort.Strings(g.rhs)
		if f, err := fd.New(ds[0].FD.Schema(), g.lhs, g.rhs); err == nil {
			out = append(out, f)
		}
	}
	return out
}

// combinations enumerates the sorted index subsets of {0..n-1} of size 1
// to maxSize, level by level (all singletons, then pairs, ...), which the
// minimality pruning relies on.
func combinations(n, maxSize int) [][]int {
	var out [][]int
	for size := 1; size <= maxSize && size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			out = append(out, append([]int(nil), idx...))
			// Advance to the next combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return out
}

func containsIdx(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// containsAll reports whether sorted set x contains every element of det.
func containsAll(x, det []int) bool {
	for _, d := range det {
		if !containsIdx(x, d) {
			return false
		}
	}
	return true
}

func countDistinct(keys []string) int {
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return len(set)
}
