package ruleio

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokLParen
	tokRParen
	tokComma
	tokEquals
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexeme with its source line for error messages.
type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenises the rule DSL. '#' starts a comment running to end of
// line; strings are double-quoted with \" and \\ escapes; identifiers are
// letters, digits, '_', '-' and '.'.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '(':
			l.pos++
			return token{tokLParen, "(", l.line}, nil
		case c == ')':
			l.pos++
			return token{tokRParen, ")", l.line}, nil
		case c == ',':
			l.pos++
			return token{tokComma, ",", l.line}, nil
		case c == '=':
			l.pos++
			return token{tokEquals, "=", l.line}, nil
		case c == '"':
			return l.lexString()
		case isIdentRune(c):
			return l.lexIdent(), nil
		default:
			return token{}, l.errorf("unexpected character %q", string(c))
		}
	}
	return token{tokEOF, "", l.line}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{tokString, b.String(), start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated escape in string")
			}
			esc := l.src[l.pos]
			switch esc {
			case '"', '\\':
				b.WriteRune(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errorf("unknown escape \\%s", string(esc))
			}
			l.pos++
		case '\n':
			return token{}, l.errorf("unterminated string")
		default:
			b.WriteRune(c)
			l.pos++
		}
	}
	return token{}, l.errorf("unterminated string")
}

func (l *lexer) lexIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
		l.pos++
	}
	return token{tokIdent, string(l.src[start:l.pos]), l.line}
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.'
}
