package gen

import (
	"testing"

	"fixrule"
)

func TestGenerators(t *testing.T) {
	h := Hosp(500, 1)
	if h.Name != "hosp" || h.Rel.Len() != 500 || len(h.FDs) != 5 {
		t.Errorf("hosp = %s/%d rows/%d FDs", h.Name, h.Rel.Len(), len(h.FDs))
	}
	u := UIS(400, 1)
	if u.Name != "uis" || u.Rel.Len() != 400 || len(u.FDs) != 3 {
		t.Errorf("uis = %s/%d rows/%d FDs", u.Name, u.Rel.Len(), len(u.FDs))
	}
	if fixrule.FDViolationCount(h.Rel, h.FDs) != 0 || fixrule.FDViolationCount(u.Rel, u.FDs) != 0 {
		t.Error("clean data violates its FDs")
	}
	if _, err := ByName("hosp", 10, 1); err != nil {
		t.Error(err)
	}
	if _, err := ByName("zzz", 10, 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCorruptAndRepairRoundTrip(t *testing.T) {
	d := Hosp(2000, 1)
	dirty, errs, err := Corrupt(d.Rel, d.NoiseAttrs, 0.1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 200 {
		t.Fatalf("errors = %d", len(errs))
	}
	rs, err := fixrule.MineRules(d.Rel, dirty, d.FDs, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fixrule.NewRepairer(rs)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.RepairRelation(dirty, fixrule.Linear)
	s := fixrule.Evaluate(d.Rel, dirty, res.Relation)
	if s.Precision < 0.9 || s.Recall < 0.3 {
		t.Errorf("end-to-end scores %v", s)
	}
}

func TestCorruptValidation(t *testing.T) {
	d := UIS(50, 1)
	if _, _, err := Corrupt(d.Rel, nil, 0.1, 0.5, 1); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, _, err := Corrupt(d.Rel, d.NoiseAttrs, 2, 0.5, 1); err == nil {
		t.Error("bad rate accepted")
	}
}
