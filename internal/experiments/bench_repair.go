package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"fixrule/internal/repair"
	"fixrule/internal/rulegen"
	"fixrule/internal/schema"
)

// RepairBench records one measured repair configuration for
// BENCH_repair.json — the machine-readable throughput record the README's
// performance table is derived from.
type RepairBench struct {
	Dataset      string  `json:"dataset"`
	Rows         int     `json:"rows"`
	Rules        int     `json:"rules"`
	Algorithm    string  `json:"algorithm"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
	Steps        int     `json:"steps"`
	// Procs records GOMAXPROCS at measurement time: the parallel rows are
	// only meaningful relative to it (on a single-core host parallel ≈
	// sequential by design).
	Procs int `json:"gomaxprocs"`
}

// benchReps times enough whole-relation repairs to exceed a fixed wall
// budget and returns the best (lowest) per-run duration, mirroring what
// `go test -bench` reports as typical.
func benchReps(budget time.Duration, run func()) time.Duration {
	run() // warm dictionaries, pools and caches
	best := time.Duration(1<<63 - 1)
	for spent := time.Duration(0); spent < budget; {
		start := time.Now()
		run()
		d := time.Since(start)
		spent += d
		if d < best {
			best = d
		}
	}
	return best
}

// BenchRepair measures whole-relation repair throughput on the named
// dataset with its default workload and returns one record per
// configuration: cRepair, lRepair, lRepair with the parallel driver, the
// sequential and parallel row-at-a-time CSV streaming paths, and the
// columnar batch engine (sequential and parallel).
func BenchRepair(cfg Config, ds string) ([]RepairBench, error) {
	w, err := makeWorkload(cfg, ds, 0.5)
	if err != nil {
		return nil, err
	}
	rs, err := rulegen.MineConsistent(w.ds.Rel, w.dirty, w.ds.FDs,
		rulegen.Config{MaxRules: cfg.ruleBudget(ds), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rep := repair.NewRepairer(rs)
	n := w.dirty.Len()
	steps := rep.RepairRelation(w.dirty, repair.Linear).Steps

	// The streaming rows repair the same relation through the CSV codecs,
	// so they carry parse + format cost on top of repair; rendered once,
	// replayed from memory.
	var csvIn bytes.Buffer
	if err := schema.WriteCSV(&csvIn, w.dirty); err != nil {
		return nil, err
	}
	in := csvIn.Bytes()

	const budget = 2 * time.Second
	out := make([]RepairBench, 0, 7)
	for _, m := range []struct {
		name string
		run  func()
	}{
		{"cRepair", func() { rep.RepairRelation(w.dirty, repair.Chase) }},
		{"lRepair", func() { rep.RepairRelation(w.dirty, repair.Linear) }},
		{"lRepair/parallel", func() { rep.RepairRelationParallel(w.dirty, repair.Linear, 0) }},
		{"lRepair/stream", func() {
			if _, err := rep.StreamCSV(bytes.NewReader(in), io.Discard, repair.Linear); err != nil {
				panic(err)
			}
		}},
		{"lRepair/stream-parallel", func() {
			if _, err := rep.StreamCSVParallel(context.Background(), bytes.NewReader(in), io.Discard, repair.Linear, 0); err != nil {
				panic(err)
			}
		}},
		{"lRepair/stream-columnar", func() {
			if _, err := rep.StreamCSVColumnar(context.Background(), bytes.NewReader(in), io.Discard, repair.Linear,
				repair.ParallelOptions{Workers: 1}); err != nil {
				panic(err)
			}
		}},
		{"lRepair/stream-columnar-parallel", func() {
			if _, err := rep.StreamCSVColumnar(context.Background(), bytes.NewReader(in), io.Discard, repair.Linear,
				repair.ParallelOptions{}); err != nil {
				panic(err)
			}
		}},
	} {
		d := benchReps(budget, m.run)
		out = append(out, RepairBench{
			Dataset:      ds,
			Rows:         n,
			Rules:        rs.Len(),
			Algorithm:    m.name,
			TuplesPerSec: float64(n) / d.Seconds(),
			NsPerTuple:   float64(d.Nanoseconds()) / float64(n),
			Steps:        steps,
			Procs:        runtime.GOMAXPROCS(0),
		})
	}
	return out, nil
}

// WriteBenchJSON runs BenchRepair on every named dataset and writes the
// combined records to path as indented JSON.
func WriteBenchJSON(cfg Config, datasets []string, path string) error {
	var all []RepairBench
	for _, ds := range datasets {
		recs, err := BenchRepair(cfg, ds)
		if err != nil {
			return fmt.Errorf("bench %s: %w", ds, err)
		}
		all = append(all, recs...)
	}
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
