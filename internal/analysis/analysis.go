// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// API surface (Analyzer, Pass, Diagnostic) on top of the standard
// library's go/ast and go/types.
//
// The paper checks Σ's dependability properties — consistency, unique
// fixes — statically, before any repair runs (Section 5, Theorem 1). This
// package extends the same discipline to the Go engine itself: the
// invariants the engine's speed and determinism rest on (the 0-alloc coded
// hot path, cache-line padding of per-worker accumulators, bounded context
// polling in row loops, stable HTTP error codes, deterministic ordered
// output) are enforced at vet time by the analyzers in the subpackages,
// driven by cmd/fixvet.
//
// Why not golang.org/x/tools? The root module is deliberately
// dependency-free (see README), so the framework reproduces exactly the
// slice of the x/tools API the five analyzers need, backed by a package
// loader built on `go list -deps -json` and the standard type checker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Mirrors the x/tools type of the same
// name so the analyzers could be ported to a multichecker built on
// x/tools without modification.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //fix:allow
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's one-paragraph description.
	Doc string
	// Codes lists the stable diagnostic codes the analyzer can emit —
	// the machine-readable finding classes consumers key on. fixvet
	// -codes enumerates them.
	Codes []string
	// Run applies the analyzer to one package. Nil for analyzers that
	// only implement RunAudit.
	Run func(*Pass) error
	// RunAudit, if set, runs after every analyzer of the suite has
	// finished on the package, receiving the suppression audit trail —
	// which //fix:allow directives actually matched a diagnostic. This
	// is how suppressaudit keeps suppressions from rotting.
	RunAudit func(*Pass, *Audit) error
}

// An Audit summarises the suppression activity of one Run for
// suite-level analyzers.
type Audit struct {
	Suppressions []AuditedSuppression
}

// AuditedSuppression is one well-formed //fix:allow directive and its
// fate during the run.
type AuditedSuppression struct {
	// Analyzer is the directive's target analyzer name.
	Analyzer string
	// Reason is the mandatory justification text.
	Reason string
	// Pos is the directive comment's position.
	Pos token.Pos
	// Used reports whether the directive suppressed at least one
	// diagnostic during this run.
	Used bool
	// Assessable reports whether the named analyzer was part of this
	// run: a directive for an analyzer that did not execute cannot be
	// judged stale.
	Assessable bool
}

// A Pass presents one package to an analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file of the load.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression in Files.
	TypesInfo *types.Info
	// TypesSizes gives sizes/offsets under the build platform (gc/amd64).
	TypesSizes types.Sizes
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos carrying the stable short
// code (e.g. "fmt-call"), which clients key on like the server's error
// codes: the message may change, the code must not.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Code: code, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the load's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Code    string // stable machine-readable finding class
	Message string
}

// allowDirective is the audited suppression marker: a finding on line N is
// dropped when line N or N-1 carries a comment of the form
//
//	//fix:allow <analyzer>: <reason>
//
// The reason is mandatory — a suppression without one is itself reported —
// so every silenced finding records why it is safe, in the source, where
// review sees it.
const allowDirective = "fix:allow"

// suppression is one parsed //fix:allow directive.
type suppression struct {
	analyzer string
	reason   string
	line     int
	file     string
	pos      token.Pos
}

// collectSuppressions parses every //fix:allow directive in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				name, reason, _ := strings.Cut(rest, ":")
				pos := fset.Position(c.Pos())
				sups = append(sups, suppression{
					analyzer: strings.TrimSpace(name),
					reason:   strings.TrimSpace(reason),
					line:     pos.Line,
					file:     pos.Filename,
					pos:      c.Pos(),
				})
			}
		}
	}
	return sups
}

// RunResult is one analyzer's findings for one package, after suppression
// filtering.
type RunResult struct {
	Analyzer *Analyzer
	Diags    []Diagnostic
}

// Run applies the analyzers to a loaded package and returns their
// surviving diagnostics, sorted by position. //fix:allow directives are
// honoured here; a directive missing its reason, or naming an unknown
// analyzer, produces a framework diagnostic of its own so suppressions
// cannot rot silently.
func Run(pkg *Package, analyzers []*Analyzer) ([]RunResult, error) {
	sups := collectSuppressions(pkg.Fset, pkg.Syntax)
	used := make([]bool, len(sups))
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	newPass := func(a *Analyzer, diags *[]Diagnostic) *Pass {
		return &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypesSizes,
			Report:     func(d Diagnostic) { *diags = append(*diags, d) },
		}
	}
	filter := func(a *Analyzer, diags []Diagnostic, markUsed bool) []Diagnostic {
		kept := diags[:0]
		for _, d := range diags {
			if !suppressed(pkg.Fset, d, a.Name, sups, used, markUsed) {
				kept = append(kept, d)
			}
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
		return kept
	}

	var results []RunResult
	for _, a := range analyzers {
		if a.Run == nil {
			continue // audit-only analyzers run below
		}
		var diags []Diagnostic
		if err := a.Run(newPass(a, &diags)); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		results = append(results, RunResult{Analyzer: a, Diags: filter(a, diags, true)})
	}

	// Malformed suppressions are findings too, attributed to a synthetic
	// "framework" analyzer appended after the real ones.
	var bad []Diagnostic
	for _, s := range sups {
		switch {
		case s.analyzer == "" || s.reason == "":
			bad = append(bad, Diagnostic{Pos: s.pos, Code: "bad-suppression",
				Message: "malformed //fix:allow: want //fix:allow <analyzer>: <reason>"})
		case !known[s.analyzer]:
			bad = append(bad, Diagnostic{Pos: s.pos, Code: "unknown-analyzer",
				Message: fmt.Sprintf("//fix:allow names unknown analyzer %q", s.analyzer)})
		}
	}
	if len(bad) > 0 {
		results = append(results, RunResult{Analyzer: Framework, Diags: bad})
	}

	// Suite-level audit analyzers see which suppressions earned their
	// keep. Their own diagnostics honour //fix:allow like any other.
	audit := &Audit{}
	for i, s := range sups {
		if s.analyzer == "" || s.reason == "" {
			continue // already reported as bad-suppression
		}
		audit.Suppressions = append(audit.Suppressions, AuditedSuppression{
			Analyzer:   s.analyzer,
			Reason:     s.reason,
			Pos:        s.pos,
			Used:       used[i],
			Assessable: known[s.analyzer],
		})
	}
	for _, a := range analyzers {
		if a.RunAudit == nil {
			continue
		}
		var diags []Diagnostic
		if err := a.RunAudit(newPass(a, &diags), audit); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		results = append(results, RunResult{Analyzer: a, Diags: filter(a, diags, false)})
	}
	return results, nil
}

// Framework attributes diagnostics about the analysis machinery itself
// (malformed suppressions); it has no Run of its own.
var Framework = &Analyzer{
	Name:  "fixvet",
	Doc:   "diagnostics about the //fix: directives themselves",
	Codes: []string{"bad-suppression", "unknown-analyzer"},
}

// suppressed reports whether diagnostic d of the named analyzer is covered
// by a //fix:allow on its line or the line above, in the same file. When
// markUsed is set, a matching suppression is recorded as live in used.
func suppressed(fset *token.FileSet, d Diagnostic, analyzer string, sups []suppression, used []bool, markUsed bool) bool {
	if len(sups) == 0 {
		return false
	}
	pos := fset.Position(d.Pos)
	hit := false
	for i, s := range sups {
		if s.analyzer == analyzer && s.reason != "" && s.file == pos.Filename &&
			(s.line == pos.Line || s.line == pos.Line-1) {
			if markUsed {
				used[i] = true
			}
			hit = true
		}
	}
	return hit
}
