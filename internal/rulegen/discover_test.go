package rulegen

import (
	"testing"

	"fixrule/internal/consistency"
	"fixrule/internal/dataset"
	"fixrule/internal/fd"
	"fixrule/internal/metrics"
	"fixrule/internal/noise"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
)

func TestDiscoverUnsupervised(t *testing.T) {
	d := dataset.Hosp(6000, 1)
	dirty, _, err := noise.Inject(d.Rel, noise.Config{
		Rate: 0.10, TypoFraction: 0.5, Attrs: d.NoiseAttrs, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Discover(dirty, d.FDs, DiscoverConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("discovered no rules")
	}
	if conf := consistency.IsConsistent(rs, consistency.ByRule); conf != nil {
		t.Fatalf("discovered rules inconsistent: %v", conf)
	}
	rep := repair.NewRepairer(rs)
	res := rep.RepairRelation(dirty, repair.Linear)
	s := metrics.Evaluate(d.Rel, dirty, res.Relation)
	if s.Updated == 0 {
		t.Fatal("discovered rules repaired nothing")
	}
	// Without ground truth the precision bar is lower than for expert
	// rules, but majority voting with support 3 / confidence 0.8 should
	// still be dependable on hosp's deep groups.
	if s.Precision < 0.8 {
		t.Errorf("unsupervised precision = %v, want >= 0.8", s.Precision)
	}
}

func TestDiscoverThresholds(t *testing.T) {
	sch := schema.New("R", "k", "v")
	f := fd.MustNew(sch, []string{"k"}, []string{"v"})
	rel := schema.NewRelation(sch)
	// Group "a": 4 good vs 1 bad — clears support 3 and confidence 0.8.
	for i := 0; i < 4; i++ {
		rel.Append(schema.Tuple{"a", "good"})
	}
	rel.Append(schema.Tuple{"a", "bad"})
	// Group "b": 2 vs 2 — ambiguous, must be skipped.
	rel.Append(schema.Tuple{"b", "x"})
	rel.Append(schema.Tuple{"b", "x"})
	rel.Append(schema.Tuple{"b", "y"})
	rel.Append(schema.Tuple{"b", "y"})
	// Group "c": 2 vs 1 — support below threshold.
	rel.Append(schema.Tuple{"c", "p"})
	rel.Append(schema.Tuple{"c", "p"})
	rel.Append(schema.Tuple{"c", "q"})

	rs, err := Discover(rel, []*fd.FD{f}, DiscoverConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("discovered %d rules, want exactly the group-a rule", rs.Len())
	}
	r := rs.Rules()[0]
	if v, _ := r.EvidenceValue("k"); v != "a" || r.Fact() != "good" || !r.IsNegative("bad") {
		t.Errorf("rule = %v", r)
	}
	// Lower thresholds admit group c too.
	rs2, err := Discover(rel, []*fd.FD{f}, DiscoverConfig{MinSupport: 2, MinConfidence: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != 2 {
		t.Errorf("relaxed thresholds found %d rules, want 2", rs2.Len())
	}
}

func TestDiscoverMaxRules(t *testing.T) {
	d := dataset.Hosp(4000, 1)
	dirty, _, err := noise.Inject(d.Rel, noise.Config{
		Rate: 0.10, TypoFraction: 0.5, Attrs: d.NoiseAttrs, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Discover(dirty, d.FDs, DiscoverConfig{MaxRules: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() > 5 {
		t.Errorf("MaxRules=5 produced %d rules", rs.Len())
	}
}

func TestFromCFDs(t *testing.T) {
	sch := schema.New("R", "country", "capital", "city")
	f := fd.MustNew(sch, []string{"country"}, []string{"capital"})
	// Constant CFD: country=China → capital=Beijing.
	c := fd.MustNewCFD(f, map[string]string{"country": "China", "capital": "Beijing"})
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"China", "Beijing", "x"})
	rel.Append(schema.Tuple{"China", "Shanghai", "x"})
	rel.Append(schema.Tuple{"China", "Hongkong", "x"})
	rel.Append(schema.Tuple{"Japan", "Tokyo", "x"})

	rs, err := FromCFDs(rel, []*fd.CFD{c}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rules = %d, want 1", rs.Len())
	}
	r := rs.Rules()[0]
	if v, _ := r.EvidenceValue("country"); v != "China" {
		t.Errorf("evidence = %q", v)
	}
	if r.Fact() != "Beijing" || !r.IsNegative("Shanghai") || !r.IsNegative("Hongkong") {
		t.Errorf("rule = %v", r)
	}
	// The derived rule repairs exactly the CFD's constant violations.
	rep := repair.NewRepairer(rs)
	fixed, steps := rep.RepairTuple(schema.Tuple{"China", "Shanghai", "x"}, repair.Linear)
	if len(steps) != 1 || fixed[1] != "Beijing" {
		t.Errorf("repair = %v (%d steps)", fixed, len(steps))
	}
}

func TestFromCFDsSkipsUnusable(t *testing.T) {
	sch := schema.New("R", "country", "capital")
	f := fd.MustNew(sch, []string{"country"}, []string{"capital"})
	variable := fd.MustNewCFD(f, map[string]string{"country": "China"})  // RHS wildcard
	wildLHS := fd.MustNewCFD(f, map[string]string{"capital": "Beijing"}) // LHS wildcard
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"China", "Beijing"})
	rel.Append(schema.Tuple{"China", "Shanghai"})
	rs, err := FromCFDs(rel, []*fd.CFD{variable, wildLHS}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Errorf("unusable CFDs produced %d rules", rs.Len())
	}
}
