package editing

import (
	"testing"

	"fixrule"
)

func TestPublicEditingWorkflow(t *testing.T) {
	sch := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	clean := fixrule.NewRelation(sch)
	clean.Append(fixrule.Tuple{"a", "China", "Beijing", "Beijing", "SIGMOD"})
	clean.Append(fixrule.Tuple{"b", "Canada", "Ottawa", "Toronto", "VLDB"})
	clean.Append(fixrule.Tuple{"c", "Canada", "Ottawa", "Ottawa", "ICDE"})

	master, err := BuildMaster("Cap", clean, []string{"country", "capital"})
	if err != nil {
		t.Fatal(err)
	}
	// Deduplicated: (China, Beijing) and (Canada, Ottawa).
	if master.Len() != 2 {
		t.Fatalf("master has %d rows", master.Len())
	}

	er, err := NewRule("eR1", sch, master.Schema(),
		map[string]string{"country": "country"}, "capital", "capital", nil)
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(sch, master, []*Rule{er})

	dirty := fixrule.NewRelation(sch)
	dirty.Append(fixrule.Tuple{"x", "China", "Shanghai", "Hongkong", "ICDE"})
	dirty.Append(fixrule.Tuple{"y", "Canada", "Toronto", "Toronto", "VLDB"})

	res := engine.Repair(dirty, AlwaysYes{})
	if res.Relation.Get(0, "capital") != "Beijing" || res.Relation.Get(1, "capital") != "Ottawa" {
		t.Errorf("repair: %v", res.Relation.Rows())
	}
	if res.Interactions != 2 {
		t.Errorf("interactions = %d", res.Interactions)
	}

	// Certifier with row awareness.
	declineFirst := CertifierFunc(func(row int, tu fixrule.Tuple, attrs []string) bool {
		return row != 0
	})
	res2 := engine.Repair(dirty, declineFirst)
	if res2.Relation.Get(0, "capital") != "Shanghai" || res2.Relation.Get(1, "capital") != "Ottawa" {
		t.Errorf("row-aware certify: %v", res2.Relation.Rows())
	}
}

func TestBuildMasterValidation(t *testing.T) {
	sch := fixrule.NewSchema("R", "a", "b")
	rel := fixrule.NewRelation(sch)
	if _, err := BuildMaster("M", rel, nil); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := BuildMaster("M", rel, []string{"zzz"}); err == nil {
		t.Error("unknown attr accepted")
	}
}

func TestFromFixingRulesPublic(t *testing.T) {
	sch := fixrule.NewSchema("Travel", "name", "country", "capital", "city", "conf")
	r, err := fixrule.NewRule("phi1", sch, map[string]string{"country": "China"},
		"capital", []string{"Shanghai"}, "Beijing")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := fixrule.RulesetOf(r)
	if err != nil {
		t.Fatal(err)
	}
	auto := FromFixingRules(rs)
	rel := fixrule.NewRelation(sch)
	rel.Append(fixrule.Tuple{"x", "China", "Nanjing", "y", "z"})
	res := auto.Repair(rel)
	if res.Relation.Get(0, "capital") != "Beijing" || res.Applied != 1 {
		t.Errorf("auto repair: %v, applied %d", res.Relation.Rows(), res.Applied)
	}
}
