package repair

import (
	"math/rand"
	"sync"
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/schema"
)

// TestCodedRepairZeroAllocs: the EncodeTuple + RepairEncoded hot path must
// not allocate in steady state — the headline property of the compiled
// engine (the assured set is a bitmask in pooled scratch, the inverted
// lists are flat slices, and all buffers are caller- or pool-owned).
func TestCodedRepairZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	rs := paperRuleset()
	r := NewRepairer(rs)
	dirty := schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}
	row := make([]uint32, len(dirty))
	applied := make([]int32, 0, rs.Len())

	for _, alg := range []Algorithm{Chase, Linear} {
		// Warm the scratch pool outside the measured runs.
		row = r.EncodeTuple(dirty, row)
		applied = r.RepairEncoded(row, alg, applied)
		if len(applied) == 0 {
			t.Fatalf("%v: expected the paper tuple to be repaired", alg)
		}
		allocs := testing.AllocsPerRun(100, func() {
			row = r.EncodeTuple(dirty, row)
			applied = r.RepairEncoded(row, alg, applied)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per coded repair, want 0", alg, allocs)
		}
	}
}

// TestRepairTupleSingleAlloc: the string-level convenience wrapper may
// allocate only the returned clone and its step slice.
func TestRepairTupleSingleAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	rs := paperRuleset()
	r := NewRepairer(rs)
	clean := schema.Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"}
	r.RepairTuple(clean, Linear) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		r.RepairTuple(clean, Linear)
	})
	// One allocation: the returned tuple clone (no steps on a clean tuple).
	if allocs > 1 {
		t.Errorf("%v allocs per clean RepairTuple, want <= 1", allocs)
	}
}

// TestCompiledStepsMatchReference: beyond final-tuple agreement (covered by
// TestChaseLinearFixAgreeRandomized), the compiled paths must reproduce the
// reference chase's exact step sequence — same rules, same order, same
// from/to values.
func TestCompiledStepsMatchReference(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	rng := rand.New(rand.NewSource(7))
	vals := []string{"0", "1", "2", "3", "_"}
	for trial := 0; trial < 150; trial++ {
		rs := randomConsistentRuleset(t, rng, sch, 6)
		if rs.Len() == 0 {
			continue
		}
		r := NewRepairer(rs)
		for i := 0; i < 20; i++ {
			tup := schema.Tuple{
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
			}
			_, refSteps, _ := core.Fix(rs.Rules(), tup)
			_, chSteps := r.RepairTuple(tup, Chase)
			if !stepsEqual(refSteps, chSteps) {
				t.Fatalf("trial %d: chase steps diverge on %v\n ref=%v\n got=%v",
					trial, tup, refSteps, chSteps)
			}
			// lRepair applies the same rule set in a possibly different
			// order; by Church–Rosser the multiset of steps agrees.
			_, lnSteps := r.RepairTuple(tup, Linear)
			if len(lnSteps) != len(refSteps) {
				t.Fatalf("trial %d: linear step count %d != reference %d on %v",
					trial, len(lnSteps), len(refSteps), tup)
			}
		}
	}
}

func stepsEqual(a, b []core.Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rule != b[i].Rule || a[i].Attr != b[i].Attr ||
			a[i].From != b[i].From || a[i].To != b[i].To {
			return false
		}
	}
	return true
}

// TestParallelAndTupleRepairsShareRepairer drives RepairRelationParallel
// concurrently with single-tuple repairs on one shared Repairer — the
// supported concurrent-use contract. Run with -race this also proves the
// scratch pool and encode memo are properly goroutine-local.
func TestParallelAndTupleRepairsShareRepairer(t *testing.T) {
	rs := paperRuleset()
	r := NewRepairer(rs)
	rel := fig1Relation()

	seq := r.RepairRelation(rel, Linear)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res := r.RepairRelationParallel(rel, Linear, 3)
				if res.Steps != seq.Steps {
					t.Errorf("worker %d: parallel steps %d != sequential %d", w, res.Steps, seq.Steps)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tup := rel.Row(i % rel.Len())
				fixed, _ := r.RepairTuple(tup, Algorithm(i%2))
				if want := seq.Relation.Row(i % rel.Len()); !fixed.Equal(want) {
					t.Errorf("worker %d: tuple repair %v != relation repair %v", w, fixed, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
