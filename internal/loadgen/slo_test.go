package loadgen

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
		check   func(t *testing.T, s SLO)
	}{
		{in: "", check: func(t *testing.T, s SLO) {
			if len(s.Terms) != 0 {
				t.Errorf("empty SLO has %d terms", len(s.Terms))
			}
		}},
		{in: "p99=50ms,err<0.1%", check: func(t *testing.T, s SLO) {
			if len(s.Terms) != 2 {
				t.Fatalf("terms = %d, want 2", len(s.Terms))
			}
			if s.Terms[0].Kind != "quantile" || s.Terms[0].Q != 0.99 || s.Terms[0].Dur != 50*time.Millisecond {
				t.Errorf("term 0 = %+v", s.Terms[0])
			}
			if s.Terms[1].Kind != "err" || s.Terms[1].Rate != 0.001 {
				t.Errorf("term 1 = %+v", s.Terms[1])
			}
		}},
		{in: "p99.9<=250ms", check: func(t *testing.T, s SLO) {
			if math.Abs(s.Terms[0].Q-0.999) > 1e-9 {
				t.Errorf("Q = %v, want 0.999", s.Terms[0].Q)
			}
		}},
		{in: "mean<5ms, max=2s, shed<1%", check: func(t *testing.T, s SLO) {
			if len(s.Terms) != 3 {
				t.Fatalf("terms = %d, want 3", len(s.Terms))
			}
			if s.Terms[0].Kind != "mean" || s.Terms[1].Kind != "max" || s.Terms[2].Kind != "shed" {
				t.Errorf("kinds = %v %v %v", s.Terms[0].Kind, s.Terms[1].Kind, s.Terms[2].Kind)
			}
			if s.Terms[2].Rate != 0.01 {
				t.Errorf("shed rate = %v", s.Terms[2].Rate)
			}
		}},
		{in: "p99=50", wantErr: "bad duration"},
		{in: "p0=50ms", wantErr: "bad quantile"},
		{in: "p100=50ms", wantErr: "bad quantile"},
		{in: "err<0.1", wantErr: "needs a % suffix"},
		{in: "err<101%", wantErr: "bad percentage"},
		{in: "latency=50ms", wantErr: "unknown metric"},
		{in: "p99", wantErr: "want metric"},
		{in: "=50ms", wantErr: "want metric"},
		{in: "mean<", wantErr: "missing bound"},
	}
	for _, tc := range cases {
		s, err := ParseSLO(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSLO(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q) unexpected error: %v", tc.in, err)
			continue
		}
		tc.check(t, s)
	}
}

func TestSLOEvaluate(t *testing.T) {
	rep := &Report{Attempted: 1000, OK: 985, Shed: 10, Errors: 4, Dropped: 1}
	// 1000 samples: 980 at 10ms, 20 at 200ms → the p99 rank (990) lands in
	// the 200ms tail, p50 at 10ms-ish, max 200ms.
	for i := 0; i < 980; i++ {
		rep.Latency.Record(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		rep.Latency.Record(200 * time.Millisecond)
	}

	slo, err := ParseSLO("p50=11ms,p99<150ms,max<=1s,err<1%,shed<0.5%")
	if err != nil {
		t.Fatal(err)
	}
	results, pass := slo.Evaluate(rep)
	if pass {
		t.Error("overall pass = true, want false (p99 and shed should fail)")
	}
	wantPass := map[string]bool{
		"p50=11ms":  true,  // 10ms + ≤1.6% bucket width < 11ms
		"p99<150ms": false, // p99 ≈ 200ms
		"max<=1s":   true,
		"err<1%":    true,  // (4+0+1)/1000 = 0.5%
		"shed<0.5%": false, // 10/1000 = 1%
	}
	for _, r := range results {
		want, ok := wantPass[r.Term.Raw]
		if !ok {
			t.Errorf("unexpected term %q", r.Term.Raw)
			continue
		}
		if r.Pass != want {
			t.Errorf("term %q pass = %v, want %v (observed %s)", r.Term.Raw, r.Pass, want, r.Observed)
		}
		if r.Observed == "" {
			t.Errorf("term %q has empty observed value", r.Term.Raw)
		}
	}

	// Empty SLO trivially passes.
	if _, pass := (SLO{}).Evaluate(rep); !pass {
		t.Error("empty SLO failed")
	}
}
