package repair

import (
	"fmt"
	"strings"

	"fixrule/internal/core"
	"fixrule/internal/schema"
)

// Explanation is the full provenance of one tuple's repair: every applied
// rule, the evidence that justified it, the negative pattern matched, and
// the resulting assured attributes. It answers the question dependable
// repairing is about — *why* was this cell changed?
type Explanation struct {
	// Input and Output are the tuple before and after repair.
	Input, Output schema.Tuple
	// Steps explains each rule application, in order.
	Steps []StepExplanation
	// Assured lists the attributes validated correct by the repair.
	Assured []string
}

// StepExplanation explains one rule application.
type StepExplanation struct {
	Rule *core.Rule
	// Evidence lists the attribute=value pairs the rule matched on.
	Evidence []string
	// Attr is the repaired attribute; From the negative-pattern value it
	// held; To the fact written.
	Attr, From, To string
}

// Changed reports whether the repair modified the tuple at all.
func (e *Explanation) Changed() bool { return len(e.Steps) > 0 }

// String renders the explanation as a multi-line human-readable report.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "input:  %v\n", []string(e.Input))
	if !e.Changed() {
		b.WriteString("no rule properly applies: tuple left unchanged\n")
		return b.String()
	}
	for i, s := range e.Steps {
		fmt.Fprintf(&b, "step %d: rule %s\n", i+1, s.Rule.Name())
		fmt.Fprintf(&b, "        evidence %s\n", strings.Join(s.Evidence, ", "))
		fmt.Fprintf(&b, "        %s = %q matches a negative pattern; corrected to %q\n",
			s.Attr, s.From, s.To)
	}
	fmt.Fprintf(&b, "output: %v\n", []string(e.Output))
	fmt.Fprintf(&b, "assured attributes: %s\n", strings.Join(e.Assured, ", "))
	return b.String()
}

// Explain repairs t with the chosen algorithm and returns the full
// provenance. The input tuple is not modified.
func (r *Repairer) Explain(t schema.Tuple, alg Algorithm) *Explanation {
	fixed, steps := r.RepairTuple(t, alg)
	e := &Explanation{Input: t.Clone(), Output: fixed}
	assured := map[string]struct{}{}
	for _, s := range steps {
		var evidence []string
		for _, a := range s.Rule.EvidenceAttrs() {
			v, _ := s.Rule.EvidenceValue(a)
			evidence = append(evidence, fmt.Sprintf("%s=%q", a, v))
			assured[a] = struct{}{}
		}
		assured[s.Attr] = struct{}{}
		e.Steps = append(e.Steps, StepExplanation{
			Rule: s.Rule, Evidence: evidence,
			Attr: s.Attr, From: s.From, To: s.To,
		})
	}
	for _, a := range r.rs.Schema().Attrs() {
		if _, ok := assured[a]; ok {
			e.Assured = append(e.Assured, a)
		}
	}
	return e
}
