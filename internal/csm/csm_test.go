package csm

import (
	"strings"
	"testing"

	"fixrule/internal/dataset"
	"fixrule/internal/fd"
	"fixrule/internal/metrics"
	"fixrule/internal/noise"
	"fixrule/internal/schema"
)

func TestRepairEqualizesByCardinality(t *testing.T) {
	sch := schema.New("R", "k", "v")
	f := fd.MustNew(sch, []string{"k"}, []string{"v"})
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"a", "X"})
	rel.Append(schema.Tuple{"a", "X"})
	rel.Append(schema.Tuple{"a", "X"})
	rel.Append(schema.Tuple{"a", "Y"})
	// The majority X requires one change; keeping Y would require three.
	out := Repair(rel, []*fd.FD{f}, Config{Seed: 1, LHSBreakProb: -1})
	for i := 0; i < 4; i++ {
		if got := out.Get(i, "v"); got != "X" {
			t.Errorf("row %d = %q, want majority X", i, got)
		}
	}
	if rel.Get(3, "v") != "Y" {
		t.Error("Repair mutated its input")
	}
}

func TestRepairSamplesOnTies(t *testing.T) {
	sch := schema.New("R", "k", "v")
	f := fd.MustNew(sch, []string{"k"}, []string{"v"})
	build := func() *schema.Relation {
		rel := schema.NewRelation(sch)
		rel.Append(schema.Tuple{"a", "X"})
		rel.Append(schema.Tuple{"a", "Y"})
		return rel
	}
	got := map[string]bool{}
	for seed := int64(0); seed < 32; seed++ {
		out := Repair(build(), []*fd.FD{f}, Config{Seed: seed, LHSBreakProb: -1})
		if out.Get(0, "v") != out.Get(1, "v") {
			t.Fatal("group left inconsistent")
		}
		got[out.Get(0, "v")] = true
	}
	if !got["X"] || !got["Y"] {
		t.Errorf("32 seeds sampled only %v: tie-breaking is not random", got)
	}
}

func TestRepairComputesConsistentDatabase(t *testing.T) {
	d := dataset.Hosp(3000, 1)
	dirty, _, err := noise.Inject(d.Rel, noise.Config{Rate: 0.10, TypoFraction: 0.5, Attrs: d.NoiseAttrs, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := Repair(dirty, d.FDs, Config{Seed: 3})
	if !fd.Satisfies(out, d.FDs) {
		t.Error("Csm left FD violations (expected a consistent database)")
	}
}

func TestFreshVariableMove(t *testing.T) {
	sch := schema.New("R", "k", "v")
	f := fd.MustNew(sch, []string{"k"}, []string{"v"})
	rel := schema.NewRelation(sch)
	rel.Append(schema.Tuple{"a", "X"})
	rel.Append(schema.Tuple{"a", "Y"})
	// Force the LHS-break path every time: the violation resolves by
	// detaching a tuple with a fresh key value.
	out := Repair(rel, []*fd.FD{f}, Config{Seed: 4, LHSBreakProb: 1})
	if !fd.Satisfies(out, []*fd.FD{f}) {
		t.Fatal("not consistent after fresh-variable repair")
	}
	freshSeen := false
	for i := 0; i < out.Len(); i++ {
		if strings.HasPrefix(out.Get(i, "k"), "_v") {
			freshSeen = true
		}
	}
	if !freshSeen {
		t.Error("no fresh variable introduced despite LHSBreakProb=1")
	}
}

func TestRepairAccuracyShape(t *testing.T) {
	d := dataset.Hosp(4000, 1)
	score := func(typoFrac float64) metrics.Scores {
		dirty, _, err := noise.Inject(d.Rel, noise.Config{Rate: 0.10, TypoFraction: typoFrac, Attrs: d.NoiseAttrs, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		out := Repair(dirty, d.FDs, Config{Seed: 3})
		return metrics.Evaluate(d.Rel, dirty, out)
	}
	typoHeavy := score(1.0)
	domainHeavy := score(0.0)
	if domainHeavy.Precision >= typoHeavy.Precision {
		t.Errorf("precision should drop with active-domain errors: typo=%v domain=%v",
			typoHeavy.Precision, domainHeavy.Precision)
	}
	if typoHeavy.Recall < 0.4 {
		t.Errorf("typo-heavy recall = %v", typoHeavy.Recall)
	}
}

func TestRepairDeterministicInSeed(t *testing.T) {
	d := dataset.UIS(1000, 1)
	dirty, _, err := noise.Inject(d.Rel, noise.Config{Rate: 0.10, TypoFraction: 0.5, Attrs: d.NoiseAttrs, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := Repair(dirty, d.FDs, Config{Seed: 7})
	b := Repair(dirty, d.FDs, Config{Seed: 7})
	if len(schema.Diff(a, b)) != 0 {
		t.Error("same seed produced different repairs")
	}
}

func TestRepairCleanInputIsNoop(t *testing.T) {
	d := dataset.UIS(500, 1)
	out := Repair(d.Rel, d.FDs, Config{Seed: 1})
	if len(schema.Diff(d.Rel, out)) != 0 {
		t.Error("Csm modified a clean relation")
	}
}
