package fd

import (
	"fmt"
	"sort"
	"strings"

	"fixrule/internal/schema"
)

// PatternWildcard is the unnamed variable '_' of a CFD pattern tuple: it
// matches any constant.
const PatternWildcard = "_"

// CFD is a conditional functional dependency (X → Y, tp): the embedded FD
// X → Y holds only on tuples matching the pattern tuple tp, which assigns
// each attribute of X ∪ Y either a constant or the wildcard '_'.
//
// CFDs generalise the FDs of this package and appear throughout the paper's
// related work (Fan et al., TODS 2008); the repository supports them so
// rule mining can be conditioned on constants (e.g. zip → city only for
// state = "CA").
type CFD struct {
	fd      *FD
	pattern map[string]string // attr → constant or PatternWildcard
}

// NewCFD constructs a CFD over fd with the given pattern. Every pattern
// attribute must belong to X ∪ Y; missing attributes default to '_'.
func NewCFD(f *FD, pattern map[string]string) (*CFD, error) {
	if f == nil {
		return nil, fmt.Errorf("fd: nil embedded FD")
	}
	in := map[string]bool{}
	for _, a := range f.lhs {
		in[a] = true
	}
	for _, a := range f.rhs {
		in[a] = true
	}
	p := make(map[string]string, len(pattern))
	for a, v := range pattern {
		if !in[a] {
			return nil, fmt.Errorf("fd: pattern attribute %q not in X ∪ Y of %s", a, f)
		}
		p[a] = v
	}
	return &CFD{fd: f, pattern: p}, nil
}

// MustNewCFD is NewCFD that panics on error.
func MustNewCFD(f *FD, pattern map[string]string) *CFD {
	c, err := NewCFD(f, pattern)
	if err != nil {
		panic(err)
	}
	return c
}

// FD returns the embedded FD.
func (c *CFD) FD() *FD { return c.fd }

// PatternValue returns the pattern constant for attribute a ('_' if
// unconstrained).
func (c *CFD) PatternValue(a string) string {
	if v, ok := c.pattern[a]; ok {
		return v
	}
	return PatternWildcard
}

// String renders the CFD as "(X -> Y, (a=c, ...))".
func (c *CFD) String() string {
	var parts []string
	attrs := append(append([]string(nil), c.fd.lhs...), c.fd.rhs...)
	for _, a := range attrs {
		if v := c.PatternValue(a); v != PatternWildcard {
			parts = append(parts, a+"="+v)
		}
	}
	sort.Strings(parts)
	return "(" + c.fd.String() + ", (" + strings.Join(parts, ", ") + "))"
}

// matchesLHS reports whether t satisfies the constant constraints of the
// pattern on X.
func (c *CFD) matchesLHS(t schema.Tuple) bool {
	for i, a := range c.fd.lhs {
		if v := c.PatternValue(a); v != PatternWildcard && t[c.fd.lhsIdx[i]] != v {
			return false
		}
	}
	return true
}

// CFDViolation is one violated CFD condition. Constant violations involve a
// single tuple (a row matching the LHS pattern whose RHS value differs from
// the pattern constant); variable violations involve a group of rows, as for
// plain FDs.
type CFDViolation struct {
	CFD  *CFD
	Attr string
	// Rows lists the violating rows: a single row for constant violations,
	// the whole conflicting group for variable violations.
	Rows []int
	// Constant is true for single-tuple (pattern-constant) violations.
	Constant bool
}

// CFDViolations detects all violations of the CFDs in rel. Variable RHS
// attributes (pattern '_') are checked like FD attributes but only on rows
// matching the LHS pattern; constant RHS attributes are checked per row.
func CFDViolations(rel *schema.Relation, cfds []*CFD) []*CFDViolation {
	var out []*CFDViolation
	for _, c := range cfds {
		f := c.fd
		// Constant RHS checks.
		for ai, attr := range f.rhs {
			want := c.PatternValue(attr)
			if want == PatternWildcard {
				continue
			}
			for i := 0; i < rel.Len(); i++ {
				t := rel.Row(i)
				if c.matchesLHS(t) && t[f.rhsIdx[ai]] != want {
					out = append(out, &CFDViolation{CFD: c, Attr: attr, Rows: []int{i}, Constant: true})
				}
			}
		}
		// Variable RHS checks: partition matching rows by LHS key.
		groups := make(map[string][]int)
		for i := 0; i < rel.Len(); i++ {
			if c.matchesLHS(rel.Row(i)) {
				k := f.LHSKey(rel.Row(i))
				groups[k] = append(groups[k], i)
			}
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rows := groups[k]
			if len(rows) < 2 {
				continue
			}
			for ai, attr := range f.rhs {
				if c.PatternValue(attr) != PatternWildcard {
					continue
				}
				vals := map[string]bool{}
				for _, r := range rows {
					vals[rel.Row(r)[f.rhsIdx[ai]]] = true
				}
				if len(vals) > 1 {
					out = append(out, &CFDViolation{CFD: c, Attr: attr, Rows: append([]int(nil), rows...)})
				}
			}
		}
	}
	return out
}
