package repair

import (
	"math/rand"
	"testing"

	"fixrule/internal/consistency"
	"fixrule/internal/core"
	"fixrule/internal/schema"
)

func travel() *schema.Schema {
	return schema.New("Travel", "name", "country", "capital", "city", "conf")
}

func paperRuleset() *core.Ruleset {
	sch := travel()
	return core.MustRuleset(
		core.MustNew("phi1", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai", "Hongkong"}, "Beijing"),
		core.MustNew("phi2", sch, map[string]string{"country": "Canada"},
			"capital", []string{"Toronto"}, "Ottawa"),
		core.MustNew("phi3", sch,
			map[string]string{"capital": "Tokyo", "city": "Tokyo", "conf": "ICDE"},
			"country", []string{"China"}, "Japan"),
		core.MustNew("phi4", sch,
			map[string]string{"capital": "Beijing", "conf": "ICDE"},
			"city", []string{"Hongkong"}, "Shanghai"),
	)
}

func fig1Relation() *schema.Relation {
	rel := schema.NewRelation(travel())
	rel.Append(schema.Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"})
	rel.Append(schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"})
	rel.Append(schema.Tuple{"Peter", "China", "Tokyo", "Tokyo", "ICDE"})
	rel.Append(schema.Tuple{"Mike", "Canada", "Toronto", "Toronto", "VLDB"})
	return rel
}

func fig8Want() []schema.Tuple {
	return []schema.Tuple{
		{"George", "China", "Beijing", "Beijing", "SIGMOD"},
		{"Ian", "China", "Beijing", "Shanghai", "ICDE"},
		{"Peter", "Japan", "Tokyo", "Tokyo", "ICDE"},
		{"Mike", "Canada", "Ottawa", "Toronto", "VLDB"},
	}
}

func TestRunningExampleBothAlgorithms(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := fig1Relation()
	want := fig8Want()
	for _, alg := range []Algorithm{Chase, Linear} {
		for i := 0; i < rel.Len(); i++ {
			got, _ := r.RepairTuple(rel.Row(i), alg)
			if !got.Equal(want[i]) {
				t.Errorf("%v: r%d = %v, want %v", alg, i+1, got, want[i])
			}
		}
	}
}

func TestRepairTupleDoesNotMutateInput(t *testing.T) {
	r := NewRepairer(paperRuleset())
	row := schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}
	orig := row.Clone()
	for _, alg := range []Algorithm{Chase, Linear} {
		r.RepairTuple(row, alg)
		if !row.Equal(orig) {
			t.Fatalf("%v mutated the input tuple", alg)
		}
	}
}

func TestLinearCascade(t *testing.T) {
	// r2 requires a cascade: φ1 repairs capital, which completes φ4's
	// evidence (capital=Beijing, conf=ICDE) and repairs city (Figure 8).
	r := NewRepairer(paperRuleset())
	got, steps := r.RepairTuple(schema.Tuple{"Ian", "China", "Shanghai", "Hongkong", "ICDE"}, Linear)
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if steps[0].Rule.Name() != "phi1" || steps[1].Rule.Name() != "phi4" {
		t.Errorf("step order = %s, %s", steps[0].Rule.Name(), steps[1].Rule.Name())
	}
	if got[2] != "Beijing" || got[3] != "Shanghai" {
		t.Errorf("repaired = %v", got)
	}
}

func TestCleanTupleUntouched(t *testing.T) {
	r := NewRepairer(paperRuleset())
	clean := schema.Tuple{"George", "China", "Beijing", "Beijing", "SIGMOD"}
	for _, alg := range []Algorithm{Chase, Linear} {
		got, steps := r.RepairTuple(clean, alg)
		if len(steps) != 0 || !got.Equal(clean) {
			t.Errorf("%v: clean tuple repaired: %v (%d steps)", alg, got, len(steps))
		}
	}
}

func TestRepairRelation(t *testing.T) {
	r := NewRepairer(paperRuleset())
	rel := fig1Relation()
	for _, alg := range []Algorithm{Chase, Linear} {
		res := r.RepairRelation(rel, alg)
		want := fig8Want()
		for i := range want {
			if !res.Relation.Row(i).Equal(want[i]) {
				t.Errorf("%v: row %d = %v", alg, i, res.Relation.Row(i))
			}
		}
		if res.Steps != 4 {
			t.Errorf("%v: steps = %d, want 4", alg, res.Steps)
		}
		if len(res.Changed) != 4 {
			t.Errorf("%v: changed = %v", alg, res.Changed)
		}
		// Figure 8: φ1 fixes 1 error, φ2 1, φ3 1, φ4 1.
		for _, name := range []string{"phi1", "phi2", "phi3", "phi4"} {
			if res.PerRule[name] != 1 {
				t.Errorf("%v: PerRule[%s] = %d, want 1", alg, name, res.PerRule[name])
			}
		}
		// Input untouched.
		if rel.Get(1, "capital") != "Shanghai" {
			t.Fatal("RepairRelation mutated its input")
		}
	}
}

func TestRepairRelationParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRepairer(paperRuleset())
	rel := schema.NewRelation(travel())
	countries := []string{"China", "Canada", "Japan", "_"}
	capitals := []string{"Beijing", "Shanghai", "Hongkong", "Toronto", "Ottawa", "Tokyo", "_"}
	cities := []string{"Beijing", "Shanghai", "Hongkong", "Tokyo", "Toronto", "_"}
	confs := []string{"ICDE", "SIGMOD", "VLDB"}
	for i := 0; i < 500; i++ {
		rel.Append(schema.Tuple{
			"p", countries[rng.Intn(len(countries))], capitals[rng.Intn(len(capitals))],
			cities[rng.Intn(len(cities))], confs[rng.Intn(len(confs))],
		})
	}
	seq := r.RepairRelation(rel, Linear)
	for _, workers := range []int{0, 1, 3, 16} {
		par := r.RepairRelationParallel(rel, Linear, workers)
		if len(schema.Diff(seq.Relation, par.Relation)) != 0 {
			t.Fatalf("workers=%d: parallel result differs", workers)
		}
		if par.Steps != seq.Steps {
			t.Errorf("workers=%d: steps %d != %d", workers, par.Steps, seq.Steps)
		}
		for name, n := range seq.PerRule {
			if par.PerRule[name] != n {
				t.Errorf("workers=%d: PerRule[%s] = %d, want %d", workers, name, par.PerRule[name], n)
			}
		}
	}
}

func TestNewRepairerChecked(t *testing.T) {
	if _, err := NewRepairerChecked(paperRuleset()); err != nil {
		t.Fatalf("consistent ruleset rejected: %v", err)
	}
	sch := travel()
	bad := core.MustRuleset(
		core.MustNew("phi1p", sch, map[string]string{"country": "China"},
			"capital", []string{"Shanghai", "Hongkong", "Tokyo"}, "Beijing"),
		core.MustNew("phi3", sch,
			map[string]string{"capital": "Tokyo", "city": "Tokyo", "conf": "ICDE"},
			"country", []string{"China"}, "Japan"),
	)
	if _, err := NewRepairerChecked(bad); err == nil {
		t.Fatal("inconsistent ruleset accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Chase.String() != "cRepair" || Linear.String() != "lRepair" {
		t.Errorf("Algorithm names: %s, %s", Chase, Linear)
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm string empty")
	}
}

// randomConsistentRuleset builds a random ruleset over a small domain and
// resolves it to consistency, for the equivalence property below.
func randomConsistentRuleset(t *testing.T, rng *rand.Rand, sch *schema.Schema, n int) *core.Ruleset {
	t.Helper()
	vals := []string{"0", "1", "2", "3"}
	attrs := sch.Attrs()
	rs := core.NewRuleset(sch)
	for k := 0; rs.Len() < n && k < n*20; k++ {
		perm := rng.Perm(len(attrs))
		nEv := 1 + rng.Intn(2)
		ev := map[string]string{}
		for _, i := range perm[:nEv] {
			ev[attrs[i]] = vals[rng.Intn(len(vals))]
		}
		target := attrs[perm[nEv]]
		fact := vals[rng.Intn(len(vals))]
		var negs []string
		for _, v := range vals {
			if v != fact && rng.Intn(2) == 0 {
				negs = append(negs, v)
			}
		}
		if len(negs) == 0 {
			continue
		}
		rule, err := core.New(ruleName(k), sch, ev, target, negs, fact)
		if err != nil {
			continue
		}
		if err := rs.Add(rule); err != nil {
			continue
		}
	}
	fixed, _, err := consistency.Resolve(rs, consistency.RemoveBoth{}, consistency.ByRule)
	if err != nil {
		t.Fatal(err)
	}
	return fixed
}

func ruleName(k int) string { return "r" + string(rune('A'+k%26)) + string(rune('0'+k/26)) }

// TestChaseLinearFixAgreeRandomized: the paper-critical equivalence — on any
// consistent Σ, cRepair, lRepair and the reference chase (core.Fix) all
// produce the same unique fix (Church–Rosser).
func TestChaseLinearFixAgreeRandomized(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	rng := rand.New(rand.NewSource(99))
	vals := []string{"0", "1", "2", "3", "_"}
	for trial := 0; trial < 200; trial++ {
		rs := randomConsistentRuleset(t, rng, sch, 6)
		if rs.Len() == 0 {
			continue
		}
		r := NewRepairer(rs)
		for i := 0; i < 30; i++ {
			tup := schema.Tuple{
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
			}
			ref, _, _ := core.Fix(rs.Rules(), tup)
			ch, _ := r.RepairTuple(tup, Chase)
			ln, _ := r.RepairTuple(tup, Linear)
			if !ch.Equal(ref) || !ln.Equal(ref) {
				t.Fatalf("trial %d: disagree on %v\n ref=%v\n chase=%v\n linear=%v\n rules=%v",
					trial, tup, ref, ch, ln, rs.Rules())
			}
		}
	}
}

// TestAssuredAttributesNeverRewritten: once an attribute is repaired it must
// not change again within the same tuple (key dependability property).
func TestAssuredAttributesNeverRewritten(t *testing.T) {
	sch := schema.New("R", "a", "b", "c", "d")
	rng := rand.New(rand.NewSource(123))
	vals := []string{"0", "1", "2", "3", "_"}
	for trial := 0; trial < 100; trial++ {
		rs := randomConsistentRuleset(t, rng, sch, 6)
		if rs.Len() == 0 {
			continue
		}
		r := NewRepairer(rs)
		for i := 0; i < 20; i++ {
			tup := schema.Tuple{
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
			}
			for _, alg := range []Algorithm{Chase, Linear} {
				_, steps := r.RepairTuple(tup, alg)
				seen := map[string]bool{}
				for _, s := range steps {
					if seen[s.Attr] {
						t.Fatalf("%v repaired attribute %s twice on %v", alg, s.Attr, tup)
					}
					seen[s.Attr] = true
				}
			}
		}
	}
}
