// Package obs is a dependency-free observability layer for the repair
// service: atomic counters and gauges, a fixed-bucket latency histogram,
// and a registry that renders everything in the Prometheus text exposition
// format.
//
// The package is deliberately tiny — the repair engine's coded hot path is
// lock-free and zero-alloc, and nothing here may compromise that. All
// instruments are updated with single atomic operations and are registered
// up front (at server construction), so the request path never takes a
// lock or allocates: handlers hold *Counter / *Histogram pointers and call
// Add/Observe on aggregate results, never per tuple.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (e.g. in-flight
// requests, ruleset version).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add increments the gauge by n (use a negative n to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 value, for quantities that are not whole
// numbers (seconds of uptime, probe latency, windowed rates). It renders
// like a Gauge; registered via Registry.FloatGauge or — for monotonic
// float quantities like cumulative GC pause seconds — Registry.FloatCounter.
type FloatGauge struct {
	v atomic.Uint64 // math.Float64bits
}

// Set stores f.
func (g *FloatGauge) Set(f float64) { g.v.Store(math.Float64bits(f)) }

// Add increments the value by f (CAS loop, same as Histogram's sum).
func (g *FloatGauge) Add(f float64) {
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+f)) {
			return
		}
	}
}

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket histogram in the Prometheus style: bounds
// are upper limits, counts are per-bucket (not cumulative internally), and
// an implicit +Inf bucket catches the tail. Observe is wait-free: one
// atomic add for the bucket, one for the count, and a CAS loop for the
// float sum.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits
	// exemplars holds the most recent exemplar per bucket (len(bounds)+1),
	// written only by ObserveExemplar — i.e. only for sampled requests, so
	// the pointer store never touches the unsampled fast path.
	exemplars []atomic.Pointer[Exemplar]
}

// An Exemplar ties one observed value to the trace that produced it, in
// the OpenMetrics sense: scraping a slow bucket yields a trace ID to pull
// up in /debug/traces.
type Exemplar struct {
	// TraceID is the hex trace ID of the sampled request.
	TraceID string
	// Value is the observed value (seconds for latency histograms).
	Value float64
}

// DefaultLatencyBuckets spans 0.5ms to 10s, suitable for request
// latencies of an in-memory repair service.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be sorted ascending. An implicit +Inf bucket is appended.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) → +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches the trace that produced
// it as the bucket's exemplar (latest wins). Callers use it only for
// sampled requests; unsampled traffic goes through Observe and pays
// nothing for the exemplar machinery.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// BucketExemplar returns bucket i's current exemplar (i indexes bounds;
// len(bounds) is the +Inf bucket), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar { return h.exemplars[i].Load() }

// SlowestExemplar returns the exemplar of the highest non-empty bucket
// that has one — the trace to look at when the tail is slow.
func (h *Histogram) SlowestExemplar() *Exemplar {
	for i := len(h.exemplars) - 1; i >= 0; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			return e
		}
	}
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket that holds the target rank, the same estimate
// Prometheus's histogram_quantile gives. It returns 0 with no
// observations; ranks landing in the +Inf bucket clamp to the largest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts := h.Snapshot()
	return QuantileFromBuckets(bounds, counts, q)
}

// Snapshot returns the histogram's finite upper bounds and a point-in-time
// copy of its per-bucket (non-cumulative) counts; counts has one extra
// trailing entry for the implicit +Inf bucket. The two slices feed
// QuantileFromBuckets, and external tooling can reconstruct the same view
// from a scraped exposition.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// QuantileFromBuckets is the quantile estimate Histogram.Quantile uses,
// exposed over raw bucket data: bounds are the finite upper bounds sorted
// ascending, counts the per-bucket (non-cumulative) observation counts
// with one trailing +Inf entry. Load tooling (cmd/fixload) uses it to turn
// before/after scrape deltas of a *_bucket family into the server-side
// latency quantiles of the measurement window.
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			if i >= len(bounds) { // +Inf bucket
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (bounds[i]-lo)*frac
		}
		cum += n
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// kind discriminates the instrument held by a series.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instance of a metric family.
type series struct {
	labels string // pre-rendered, e.g. `endpoint="/repair"`, or ""
	c      *Counter
	g      *Gauge
	fg     *FloatGauge // float-valued counter or gauge; wins over c/g when set
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byLab  map[string]*series
}

// Registry holds named metric families and renders them as Prometheus
// text. Registration takes a lock; reading an instrument's pointer does
// not — register once, then hold the pointer.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func()
	// runtimeDone guards RegisterRuntime against double registration —
	// two runtime hooks would each apply full GC deltas and double-count.
	runtimeDone bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Labels renders label pairs in a fixed order for series identity; pass
// the result as the labels argument of Counter/Gauge/Histogram. Keys and
// values must not need escaping (the callers here use static ASCII).
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels wants key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

func (r *Registry) lookup(name, help string, k kind, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byLab: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different type", name))
	}
	s := f.byLab[labels]
	if s == nil {
		s = &series{labels: labels}
		f.byLab[labels] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for (name, labels), registering it on first
// use. labels is a pre-rendered pair list from Labels, or "" for none.
func (r *Registry) Counter(name, help, labels string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// FloatGauge returns the float gauge for (name, labels), registering it on
// first use. A name may hold int or float series, never both.
func (r *Registry) FloatGauge(name, help, labels string) *FloatGauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.fg == nil {
		if s.g != nil {
			panic(fmt.Sprintf("obs: metric %s already registered as an int gauge", name))
		}
		s.fg = &FloatGauge{}
	}
	return s.fg
}

// FloatCounter returns a float-valued counter for (name, labels) — for
// monotonic quantities measured in fractional units, like cumulative GC
// pause seconds. It renders with counter TYPE metadata; the caller must
// only ever Add non-negative deltas.
func (r *Registry) FloatCounter(name, help, labels string) *FloatGauge {
	s := r.lookup(name, help, kindCounter, labels)
	if s.fg == nil {
		if s.c != nil {
			panic(fmt.Sprintf("obs: metric %s already registered as an int counter", name))
		}
		s.fg = &FloatGauge{}
	}
	return s.fg
}

// Histogram returns the histogram for (name, labels), registering it on
// first use with the given bucket bounds (ignored on later lookups).
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// AddScrapeHook registers fn to run at the start of every WritePrometheus /
// WriteOpenMetrics call, outside the registry lock. Hooks let gauges whose
// values live elsewhere (windowed quality rates, Go runtime stats) refresh
// at scrape time while reusing the normal rendering path.
func (r *Registry) AddScrapeHook(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// markRuntimeRegistered flips the runtime-collector guard, reporting
// whether this call was the first.
func (r *Registry) markRuntimeRegistered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runtimeDone {
		return false
	}
	r.runtimeDone = true
	return true
}

// WritePrometheus renders every registered family in the classic text
// exposition format (version 0.0.4): # HELP and # TYPE once per family,
// then one line per series, histograms as cumulative _bucket/_sum/_count.
// Exemplars are never emitted here — the 0.0.4 parser rejects anything
// after the sample value — use WriteOpenMetrics for scrapers that
// negotiate application/openmetrics-text.
func (r *Registry) WritePrometheus(w io.Writer) { r.write(w, false) }

// WriteOpenMetrics renders every registered family in the OpenMetrics
// text format: counter metadata drops the _total suffix, and histogram
// buckets carry their trace-ID exemplars. The caller owns the `# EOF`
// terminator (it must be the exposition's last line, and callers may
// append series of their own first).
func (r *Registry) WriteOpenMetrics(w io.Writer) { r.write(w, true) }

func (r *Registry) write(w io.Writer, om bool) {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		typ := map[kind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
		meta := f.name
		if om && f.kind == kindCounter {
			// OpenMetrics names the counter family without _total; the
			// sample lines keep the full name.
			meta = strings.TrimSuffix(meta, "_total")
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", meta, f.help, meta, typ)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				if s.fg != nil {
					writeSample(w, f.name, s.labels, "", s.fg.Load())
				} else {
					writeSample(w, f.name, s.labels, "", float64(s.c.Load()))
				}
			case kindGauge:
				if s.fg != nil {
					writeSample(w, f.name, s.labels, "", s.fg.Load())
				} else {
					writeSample(w, f.name, s.labels, "", float64(s.g.Load()))
				}
			case kindHistogram:
				var cum int64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					writeBucket(w, f.name, s.labels, fmt.Sprintf("le=%q", formatBound(bound)), float64(cum), exemplarIf(om, s.h, i))
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				writeBucket(w, f.name, s.labels, `le="+Inf"`, float64(cum), exemplarIf(om, s.h, len(s.h.bounds)))
				fmt.Fprintf(w, "%s_sum%s %v\n", f.name, renderLabels(s.labels, ""), s.h.Sum())
				fmt.Fprintf(w, "%s_count%s %v\n", f.name, renderLabels(s.labels, ""), s.h.Count())
			}
		}
	}
}

// exemplarIf returns bucket i's exemplar only for OpenMetrics output;
// the classic format cannot carry exemplars.
func exemplarIf(om bool, h *Histogram, i int) *Exemplar {
	if !om {
		return nil
	}
	return h.BucketExemplar(i)
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

func renderLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

func writeSample(w io.Writer, name, labels, extra string, v float64) {
	fmt.Fprintf(w, "%s%s %v\n", name, renderLabels(labels, extra), v)
}

// writeBucket renders one cumulative histogram bucket line, appending the
// bucket's exemplar in OpenMetrics syntax when one is given. Exemplars are
// only legal in application/openmetrics-text — pass nil when rendering the
// classic 0.0.4 format, whose parser rejects `#` after the sample value.
func writeBucket(w io.Writer, name, labels, le string, cum float64, e *Exemplar) {
	if e == nil {
		writeSample(w, name+"_bucket", labels, le, cum)
		return
	}
	fmt.Fprintf(w, "%s_bucket%s %v # {trace_id=%q} %v\n",
		name, renderLabels(labels, le), cum, e.TraceID, e.Value)
}
