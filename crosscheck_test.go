package fixrule

import (
	"bytes"
	"context"
	"maps"
	"testing"

	"fixrule/internal/core"
	"fixrule/internal/repair"
	"fixrule/internal/schema"
)

// TestCompiledRepairMatchesReference cross-checks the compiled repair
// engine against the string-level reference semantics in internal/core on
// the two benchmark workloads (mined hosp and uis rulesets over dirtied
// relations). For each dataset it fixes every tuple row-by-row with
// core.Fix, then requires RepairRelation (both algorithms) and
// RepairRelationParallel to produce byte-identical tuples and the same
// total step count — the dictionary encoding, inverted lists, bitmask
// assured set and copy-on-write output must be pure optimisations.
func TestCompiledRepairMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		load func(testing.TB) *benchWorkload
	}{
		{"hosp", loadHosp},
		{"uis", loadUIS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.load(t)
			rules := w.rules.Rules()
			n := w.dirty.Len()

			refRows := make([]schema.Tuple, n)
			refSteps := 0
			for i := 0; i < n; i++ {
				fixed, steps, _ := core.Fix(rules, w.dirty.Row(i))
				refRows[i] = fixed
				refSteps += len(steps)
			}
			if refSteps == 0 {
				t.Fatalf("%s: reference repair made no fixes; workload is not exercising the engine", tc.name)
			}

			rep := repair.NewRepairer(w.rules)
			check := func(label string, res *repair.Result) {
				t.Helper()
				if res.Steps != refSteps {
					t.Errorf("%s: %d steps, reference made %d", label, res.Steps, refSteps)
				}
				if res.Relation.Len() != n {
					t.Fatalf("%s: %d rows out, %d in", label, res.Relation.Len(), n)
				}
				for i := 0; i < n; i++ {
					if !res.Relation.Row(i).Equal(refRows[i]) {
						t.Fatalf("%s: row %d = %v, reference %v (input %v)",
							label, i, res.Relation.Row(i), refRows[i], w.dirty.Row(i))
					}
				}
			}
			check("cRepair", rep.RepairRelation(w.dirty, repair.Chase))
			check("lRepair", rep.RepairRelation(w.dirty, repair.Linear))
			check("lRepair/parallel", rep.RepairRelationParallel(w.dirty, repair.Linear, 4))
			check("cRepair/parallel", rep.RepairRelationParallel(w.dirty, repair.Chase, 4))
		})
	}
}

// TestColumnarStreamMatchesRowStream cross-checks the columnar batch
// engine against the row-at-a-time streaming path on the two benchmark
// workloads: for each dataset and worker count, StreamCSVColumnar must
// produce byte-identical output and identical stream statistics. The raw
// direct-Σ coding, exact-match row filter and zero-copy span emission must
// all be pure optimisations.
func TestColumnarStreamMatchesRowStream(t *testing.T) {
	for _, tc := range []struct {
		name string
		load func(testing.TB) *benchWorkload
	}{
		{"hosp", loadHosp},
		{"uis", loadUIS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.load(t)
			rep := repair.NewRepairer(w.rules)
			var in bytes.Buffer
			if err := schema.WriteCSV(&in, w.dirty); err != nil {
				t.Fatal(err)
			}

			var ref bytes.Buffer
			refStats, err := rep.StreamCSV(bytes.NewReader(in.Bytes()), &ref, repair.Linear)
			if err != nil {
				t.Fatal(err)
			}
			if refStats.Repaired == 0 {
				t.Fatalf("%s: row stream repaired nothing; workload is not exercising the engine", tc.name)
			}

			for _, workers := range []int{1, 4} {
				var got bytes.Buffer
				stats, err := rep.StreamCSVColumnar(context.Background(),
					bytes.NewReader(in.Bytes()), &got, repair.Linear,
					repair.ParallelOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(got.Bytes(), ref.Bytes()) {
					t.Errorf("workers=%d: columnar output differs from row stream (%d vs %d bytes)",
						workers, got.Len(), ref.Len())
				}
				if stats.Rows != refStats.Rows || stats.Repaired != refStats.Repaired ||
					stats.Steps != refStats.Steps || stats.OOV != refStats.OOV {
					t.Errorf("workers=%d: stats = %d/%d/%d/%d rows/repaired/steps/oov, reference %d/%d/%d/%d",
						workers, stats.Rows, stats.Repaired, stats.Steps, stats.OOV,
						refStats.Rows, refStats.Repaired, refStats.Steps, refStats.OOV)
				}
				if !maps.Equal(stats.PerRule, refStats.PerRule) {
					t.Errorf("workers=%d: per-rule counts differ", workers)
				}
				if !maps.Equal(stats.OOVByAttr, refStats.OOVByAttr) {
					t.Errorf("workers=%d: per-attribute OOV counts differ", workers)
				}
			}
		})
	}
}
