package server

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		inflight, capacity, want int64
	}{
		{0, 64, 1},    // idle (shouldn't shed, but the hint stays sane)
		{64, 64, 1},   // at the brink: retry soon
		{96, 64, 3},   // 1.5× capacity
		{128, 64, 5},  // 2× capacity
		{320, 64, 17}, // 5× capacity
		{6400, 64, 30},
		{10, 0, 30}, // degenerate capacity clamps, never divides by zero
		{1, 1, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.inflight, tc.capacity); got != tc.want {
			t.Errorf("retryAfterSecs(%d, %d) = %d, want %d",
				tc.inflight, tc.capacity, got, tc.want)
		}
	}
	// Monotone in the overload depth: more pressure never shortens the
	// backoff hint.
	prev := int64(0)
	for in := int64(0); in <= 1024; in += 16 {
		got := retryAfterSecs(in, 64)
		if got < prev {
			t.Fatalf("retryAfterSecs(%d, 64) = %d < previous %d (not monotone)", in, got, prev)
		}
		prev = got
	}
}

// TestRetryAfterGrowsUnderSaturation: the Retry-After header on shed
// responses reflects how far past capacity demand actually is — it must
// grow as the in-flight depth climbs, on both the global and the tenant
// shed paths.
func TestRetryAfterGrowsUnderSaturation(t *testing.T) {
	s, srv := newOpsServer(t, Config{MaxInFlight: 2})

	s.sem <- struct{}{} // saturate the semaphore: every repair request sheds
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	shedOnce := func() int64 {
		t.Helper()
		resp, err := http.Post(srv.URL+"/repair", "application/json",
			strings.NewReader(`{"tuples": []}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		ra, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v",
				resp.Header.Get("Retry-After"), err)
		}
		return ra
	}

	// At the brink (no excess in-flight beyond this one request) the hint
	// is the old steady-state 1s.
	atBrink := shedOnce()
	if atBrink != 1 {
		t.Errorf("Retry-After at the brink = %d, want 1", atBrink)
	}

	// Deep saturation: simulate a pile of concurrent requests past the
	// limiter by raising the inflight gauge the middleware reads (each live
	// request increments it in begin()). The hint must grow.
	s.m.inflight.Add(8) // ~5× the capacity of 2
	deep := shedOnce()
	s.m.inflight.Add(-8)
	if deep <= atBrink {
		t.Errorf("Retry-After under deep saturation = %d, want > %d", deep, atBrink)
	}
}
